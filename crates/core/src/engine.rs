//! The run-time: executes compiled programs on the simulated machine,
//! servicing dynamic-compilation traps.
//!
//! The compile artifact ([`Program`]) is immutable and thread-shareable;
//! all mutable run-time state lives in a [`Session`] — its own VM (code
//! space, registers, data memory, cycle counter), per-region bookkeeping
//! and keyed code cache. Many sessions can therefore run the same
//! `Arc<Program>` concurrently, each with deterministic, bit-identical
//! simulated results. [`Engine`] is a thin compatibility alias
//! (`Session<&Program>`) for single-owner callers.
//!
//! On the first entry to a dynamic region the session redirects execution
//! to the region's set-up code (measured in VM cycles, like everything the
//! program itself runs); at the `EndSetup` trap it invokes the stitcher on
//! the filled constants table, installs the stitched code at the end of
//! the code space, and resumes there. Unkeyed regions then have their
//! `EnterRegion` instruction patched into a direct branch, so later
//! executions pay only a branch — the paper's "the dynamically-compiled
//! templates become part of the application". Keyed regions keep the trap
//! and pay a cache-lookup cost per entry, with one stitched instance per
//! distinct key tuple.
//!
//! With [`EngineOptions::shared_cache`] set, sessions additionally consult
//! a process-wide [`SharedCodeCache`] before running set-up code: an
//! instance some other session already stitched is installed with a bulk
//! copy + relocation instead of being re-stitched (see [`crate::cache`]
//! for the sharding and the cycle-accounting caveat).

use crate::cache::{LruOrder, SharedCodeCache, SharedKey};
use crate::faults::{
    FailureKind, FailureRecord, FaultPlan, FaultPoint, FaultState, HealthReport, RecoveryPolicy,
    RecoveryState,
};
use crate::tiered::{TierDecision, TieredOptions, TieredState};
use crate::trace::{ClockDomain, EventKind, RegionProfile, TraceOptions, TraceState};
use crate::{Error, Program};
use dyncomp_ir::eval::EvalError;
use dyncomp_ir::fxhash::FxHashMap;
use dyncomp_machine::heap::HeapBuilder;
use dyncomp_machine::isa::{decode, encode, Inst, Op, CTP, SP};
use dyncomp_machine::template::ValueLoc;
use dyncomp_machine::verify::verify_code;
use dyncomp_machine::vm::{Stop, Vm, VmError};
use dyncomp_stitcher::{StitchOptions, StitchStats};
use std::borrow::Borrow;
use std::sync::Arc;
use std::time::Instant;

/// Session configuration.
#[derive(Clone, Debug)]
pub struct EngineOptions {
    /// Data memory size in bytes.
    pub memory_bytes: usize,
    /// Stitcher options (peephole, linearized table, cost model).
    pub stitch: StitchOptions,
    /// Cycles charged for an `EnterRegion` trap serviced by the runtime.
    pub trap_cycles: u64,
    /// Cycles charged for a keyed code-cache lookup (plus per-key
    /// hash/compare). The default models the O(1) hashed lookup the
    /// session implements (one hash-bucket probe plus an O(1) LRU splice);
    /// see EXPERIMENTS.md for the recalibration from the earlier
    /// linear-probe model.
    pub keyed_lookup_cycles: u64,
    /// Per-key-word hash-and-compare cycles in the keyed lookup.
    pub per_key_cycles: u64,
    /// Maximum stitched instances kept per keyed region (`None` =
    /// unbounded, the paper's model). When the cache is full the
    /// least-recently-entered key is evicted: its mapping is dropped and
    /// the region re-stitches on the next entry with that key. Code space
    /// itself is append-only (stitched code "becomes part of the
    /// application"), so eviction reclaims cache slots, not code words.
    pub keyed_cache_capacity: Option<usize>,
    /// Process-wide stitched-code cache shared between sessions. `None`
    /// (the default) keeps today's per-session caching and its exact
    /// simulated-cycle accounting — the mode the paper tables are measured
    /// in. With a cache, a session entering a region some other session
    /// already stitched installs that instance (bulk copy + relocation)
    /// instead of running set-up code and the stitcher, charging
    /// [`EngineOptions::shared_lookup_cycles`] and
    /// [`EngineOptions::shared_install_cycles_per_word`] instead.
    pub shared_cache: Option<Arc<SharedCodeCache>>,
    /// Cycles charged per shared-cache probe (hash + stripe lock + bucket
    /// walk), hit or miss. Only charged when `shared_cache` is set.
    pub shared_lookup_cycles: u64,
    /// Cycles charged per code word when installing a shared-cache hit
    /// (the bulk copy + patch relocation).
    pub shared_install_cycles_per_word: u64,
    /// Tiered execution: on a cold region entry, run the statically
    /// compiled fallback copy while a background worker stitches (see
    /// [`crate::tiered`]). `None` (the default) keeps fully synchronous
    /// set-up + stitching and bit-identical accounting to the paper
    /// tables. Requires a program compiled with
    /// [`crate::CompileOptions::tiered_fallback`]; regions without a
    /// fallback copy fall back to synchronous stitching.
    pub tiered: Option<TieredOptions>,
    /// Structured tracing ([`crate::trace`]). `None` (the default) records
    /// nothing and allocates nothing. When set, every region-lifecycle
    /// transition is recorded as a cycle-stamped [`crate::TraceEvent`];
    /// tracing charges **zero** simulated cycles, so all cycle accounting
    /// is identical with it on or off.
    pub trace: Option<TraceOptions>,
    /// Deterministic fault-injection plan ([`crate::faults`]). `None`
    /// (the default) disables injection entirely — no state is allocated
    /// and no fault point costs anything, so the paper tables never see
    /// this machinery. A seeded plan makes every fallible layer fail on a
    /// deterministic, exactly repeatable schedule.
    pub faults: Option<FaultPlan>,
    /// Recovery policy: capped retry with virtual-cycle backoff,
    /// per-region quarantine, and the stitched-code byte-budget
    /// degradation ladder. Always present; with no failures and no byte
    /// budget it charges nothing.
    pub recovery: RecoveryPolicy,
    /// Host-native copy-and-patch backend: translate every installed
    /// instance to pre-assembled x86-64 stubs in an executable arena and
    /// dispatch region entries there, falling back to the VM for
    /// unsupported instructions (see `crates/native`). The VM remains the
    /// cycle oracle: native execution charges the *identical* simulated
    /// cycles and fuel, so checksums and cycle counts are bit-identical
    /// with this on or off — only host wall-clock changes. On hosts
    /// without the backend (non-x86-64, W^X mapping refused) the session
    /// records one `backend-unavailable` health entry and runs entirely
    /// on the VM. Off by default.
    pub native: bool,
    /// Direct-threaded native dispatch (only meaningful with `native`):
    /// the whole static code region is installed as one native instance,
    /// `Jmp`/`Jsr` lower through a pc → host-entry dispatch table, and
    /// after each install the exit blobs of covered instances are
    /// back-patched into direct jumps, so hot control flow transfers
    /// between native instances without bouncing through the VM loop.
    /// Keyed `EnterRegion` traps additionally get patchable monomorphic
    /// inline-cache guards (when no keyed-cache capacity bound and no
    /// tiering is configured, whose bookkeeping needs the trap). Chained
    /// transfers charge *exactly* the simulated cycles and fuel the
    /// VM-dispatched path would, so all simulated quantities stay
    /// bit-identical. On by default; `false` reproduces the PR 6
    /// one-instance-per-dispatch behaviour (the `--no-native-chain`
    /// ablation).
    pub native_chain: bool,
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions {
            memory_bytes: 1 << 24,
            stitch: StitchOptions::default(),
            trap_cycles: 18,
            keyed_lookup_cycles: 16,
            per_key_cycles: 4,
            keyed_cache_capacity: None,
            shared_cache: None,
            shared_lookup_cycles: 30,
            shared_install_cycles_per_word: 1,
            tiered: None,
            trace: None,
            faults: None,
            recovery: RecoveryPolicy::default(),
            native: false,
            native_chain: true,
        }
    }
}

/// Native dispatches within a single `call` before the whole-static-code
/// instance is installed (chain mode). Kernels that bounce between
/// native instances and the VM loop cross this within their first
/// post-install call; kernels that enter native once per call never do,
/// and never pay the snapshot's one-time translate cost. Purely a
/// host-side heuristic: simulated cycles are identical either way.
const STATIC_CHAIN_THRESHOLD: u64 = 4;

/// Per-session state of the host-native backend (`Some` iff
/// [`EngineOptions::native`] was set). All counters are host-side
/// bookkeeping: nothing here charges simulated cycles.
struct NativeState {
    /// Installed instances and their executable arena.
    backend: dyncomp_native::Backend,
    /// Set after an install-layer failure (unsupported host, mapping
    /// refused): no further installs are attempted this session.
    disabled: bool,
    /// Whether the `backend-unavailable` health entry was recorded (it
    /// is recorded at most once per session).
    reported: bool,
    /// Artifact pre-translated by `end_setup` (so the published
    /// [`dyncomp_stitcher::Stitched`] carries its native footprint),
    /// keyed by install base and consumed by `index_instance`.
    pending: Option<(u32, dyncomp_native::Artifact)>,
    installs: u64,
    declined: u64,
    entries: u64,
    translate_ns: u64,
    translated_instructions: u64,
    covered_instructions: u64,
    /// Whether the whole-static-code instance install was attempted
    /// (chain mode; tried once, lazily, when a single call shows
    /// repeated native dispatches — the VM-bounce pattern chaining
    /// exists to collapse).
    static_attempted: bool,
    /// One past the last static code word, snapshotted at session build
    /// (everything past it is dynamically installed).
    static_end: u32,
    /// Pristine static code words, snapshotted at session build (chain
    /// mode). The whole-static-code instance is translated from this
    /// copy, not the live code space: by the time the bounce heuristic
    /// fires, trap retirement may already have patched `EnterRegion`
    /// words into branches, and the guard-sled protocol is defined
    /// against the original traps. Consumed (freed) by the install.
    static_code: Vec<u32>,
    /// Value of `entries` when the current `call` started; the install
    /// heuristic compares against it to detect repeated dispatches
    /// within one call.
    call_entries: u64,
    /// pcs marked for native dispatch, per install base — retired when
    /// the instance is severed so the VM never bounces on a dead pc.
    marks: FxHashMap<u32, Vec<u32>>,
    /// Install base → owning region ([`crate::STATIC_REGION`] for the
    /// static-code instance), for attributing chained transfers.
    region_of: FxHashMap<u32, u16>,
    /// Direct transfers attributed to the static-code instance (it has
    /// no per-region report row).
    static_chained: u64,
}

impl NativeState {
    fn new() -> Self {
        NativeState {
            backend: dyncomp_native::Backend::new(),
            disabled: false,
            reported: false,
            pending: None,
            installs: 0,
            declined: 0,
            entries: 0,
            translate_ns: 0,
            translated_instructions: 0,
            covered_instructions: 0,
            static_attempted: false,
            static_end: 0,
            static_code: Vec::new(),
            call_entries: 0,
            marks: FxHashMap::default(),
            region_of: FxHashMap::default(),
            static_chained: 0,
        }
    }
}

/// Host-native backend counters ([`Session::native_report`]). All
/// wall-clock figures are host-side measurements; the simulated cycle
/// accounting is byte-identical with the backend on or off.
#[derive(Clone, Copy, Debug, Default)]
pub struct NativeReport {
    /// Whether the backend was requested ([`EngineOptions::native`]).
    pub enabled: bool,
    /// Whether it is serving dispatches (requested, host-supported, and
    /// not disabled by an install failure).
    pub active: bool,
    /// Instances installed into the executable arena.
    pub installs: u64,
    /// Instances declined because their entry instruction does not lower
    /// natively (they stay on the VM backend).
    pub declined: u64,
    /// Native dispatches served through the VM loop that made progress
    /// (a bail-out straight back to the dispatch pc does not count).
    pub entries: u64,
    /// Direct (chained) transfers between native instances: back-patched
    /// exit jumps, dispatch-table `Jmp`/`Jsr`, and guard hits. Zero when
    /// [`EngineOptions::native_chain`] is off.
    pub chained: u64,
    /// Host bytes currently installed in the arena.
    pub bytes: u64,
    /// Host nanoseconds spent translating instances.
    pub translate_ns: u64,
    /// SimAlpha instructions translated.
    pub translated_instructions: u64,
    /// Of those, how many lowered to native stubs (the rest route to the
    /// VM at run time).
    pub covered_instructions: u64,
}

/// A keyed-cache entry: where the instance was installed and which LRU
/// slot tracks its recency.
#[derive(Clone, Copy, Debug)]
struct CacheEntry {
    /// Code address of the stitched instance.
    base: u32,
    /// Index into the region's [`LruOrder`] (`usize::MAX` for unkeyed
    /// regions, which never take the lookup path after their trap is
    /// patched away).
    lru: usize,
}

/// Per-region run-time bookkeeping.
#[derive(Debug, Default)]
struct RegionState {
    /// Stitched instances by key tuple (unkeyed regions use the empty
    /// key). The key hash is computed once per entry; [`FxHashMap`] keeps
    /// the per-lookup constant small.
    cache: FxHashMap<Vec<u64>, CacheEntry>,
    /// Recency order over `cache` (for bounded caches).
    lru: LruOrder<Vec<u64>>,
    /// Constants-table address of every stitch performed, in stitch order
    /// (for [`Session::restitch_all`]). Instances installed from the
    /// shared cache have no constants table in this session and are not
    /// recorded here.
    tables: Vec<u64>,
    /// Every stitched instance ever installed: (key, code base, length in
    /// words). Survives eviction — code space is append-only.
    instances: Vec<(Vec<u64>, u32, u32)>,
    /// Cache entries dropped to stay within the configured capacity.
    evictions: u64,
    /// Key recorded at `EnterRegion`, consumed at `EndSetup`.
    pending_key: Option<Vec<u64>>,
    /// Cycle counter value when set-up started.
    setup_start: u64,
    /// Accumulated set-up cycles (VM-measured).
    setup_cycles: u64,
    /// Accumulated stitcher statistics.
    stitch: StitchStats,
    /// Number of stitches performed.
    stitches: u32,
    /// Instances installed from the process-wide shared cache (set-up and
    /// stitching skipped).
    shared_hits: u64,
    /// Region entries observed (including fast-path re-entries only for
    /// keyed regions; patched unkeyed regions bypass the trap, so the
    /// session counts their entries via [`Session::call`]'s bookkeeping).
    invocations: u64,
    /// Entries that ran the statically compiled fallback copy while a
    /// background stitch was in flight (tiered mode).
    fallback_runs: u64,
    /// Instances installed from background workers (tiered mode).
    bg_installs: u64,
    /// Of [`RegionState::bg_installs`], those stitched speculatively
    /// (predicted key, ahead of demand).
    spec_installs: u64,
    /// Set-up cycles spent on background forks (worker clocks, never the
    /// session's — kept separate from [`RegionState::setup_cycles`] so
    /// synchronous accounting is untouched).
    bg_setup_cycles: u64,
    /// Stitch cycles spent on background forks.
    bg_stitch_cycles: u64,
    /// Faults the plan injected into this region.
    faults_injected: u64,
    /// Recovery retries charged against this region.
    retries: u64,
    /// Compile-time inline sites replayed by this session's synchronous
    /// stitches (one per site per stitch).
    inlined_calls: u64,
    /// Direct (chained) native transfers taken by dispatches that entered
    /// through this region's instances.
    native_chained: u64,
}

/// Per-region measurement report (feeds Table 2 / Table 3).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RegionReport {
    /// Region entries observed by the session.
    pub invocations: u64,
    /// Times the region was dynamically compiled *by this session*.
    pub stitches: u32,
    /// Instances installed from the shared cache instead of stitching.
    pub shared_hits: u64,
    /// VM cycles spent in set-up code.
    pub setup_cycles: u64,
    /// Simulated stitcher cycles.
    pub stitch_cycles: u64,
    /// Instructions the stitcher emitted.
    pub instructions_stitched: u32,
    /// Accumulated stitcher counters.
    pub stitch_stats: StitchStats,
    /// Keyed-cache entries evicted to respect
    /// [`EngineOptions::keyed_cache_capacity`].
    pub evictions: u64,
    /// Entries that ran the fallback copy while a background stitch was in
    /// flight (tiered mode; zero in synchronous mode).
    pub fallback_runs: u64,
    /// Instances installed from background workers (tiered mode).
    pub bg_installs: u64,
    /// Of `bg_installs`, those stitched speculatively from a predicted
    /// key.
    pub spec_installs: u64,
    /// Set-up cycles spent on background forks (worker virtual clocks;
    /// never added to `setup_cycles`).
    pub bg_setup_cycles: u64,
    /// Stitch cycles spent on background forks (never added to
    /// `stitch_cycles`).
    pub bg_stitch_cycles: u64,
    /// Faults the plan injected into this region (zero without a plan).
    pub faults_injected: u64,
    /// Recovery retries charged against this region.
    pub retries: u64,
    /// Compile-time inline sites replayed by this session's synchronous
    /// stitches ([`crate::Program::inline_sites`] × stitches).
    pub inlined_calls: u64,
    /// Direct (chained) native transfers taken by dispatches that entered
    /// through this region's instances (zero without `native_chain`).
    pub native_chained: u64,
}

/// One execution session over a shared, immutable [`Program`].
///
/// `P` is how the session holds the program: `Arc<Program>` (the default;
/// sessions on several threads share one artifact) or `&Program` (the
/// [`Engine`] compatibility alias). All mutable state — the VM, region
/// bookkeeping, the keyed code cache — is owned by the session, so
/// `Session<Arc<Program>>` is `Send` and sessions never contend except on
/// an explicitly configured [`SharedCodeCache`].
pub struct Session<P: Borrow<Program> = Arc<Program>> {
    program: P,
    /// The simulated machine (public for harnesses that need cycle counts
    /// or direct memory access).
    pub vm: Vm,
    options: EngineOptions,
    regions: Vec<RegionState>,
    /// Background stitch state; `Some` iff [`EngineOptions::tiered`] was
    /// configured.
    tiered: Option<TieredState>,
    /// Trace state; `Some` iff [`EngineOptions::trace`] was configured.
    /// Boxed: the common untraced path carries one pointer, not the ring.
    trace: Option<Box<TraceState>>,
    /// Fault-injection state; `Some` iff [`EngineOptions::faults`] was
    /// configured. Boxed for the same reason as `trace`.
    faults: Option<Box<FaultState>>,
    /// Recovery bookkeeping: the bounded failure ring, per-region
    /// quarantine, the byte-budget ladder.
    recovery: RecoveryState,
    /// Host-native backend state; `Some` iff [`EngineOptions::native`]
    /// was set. Boxed: the default VM-only path carries one pointer.
    native: Option<Box<NativeState>>,
}

/// Single-owner compatibility alias: a [`Session`] borrowing the program.
///
/// Existing `Engine::new(&program)` callers keep working unchanged;
/// multi-session callers migrate to `Session::new(Arc<Program>)`.
pub type Engine<'p> = Session<&'p Program>;

impl<P: Borrow<Program>> Session<P> {
    /// A session with default options.
    pub fn new(program: P) -> Self {
        Self::with_options(program, EngineOptions::default())
    }

    /// A session with explicit options.
    pub fn with_options(program: P, options: EngineOptions) -> Self {
        let p = program.borrow();
        let mut vm = Vm::new(options.memory_bytes);
        dyncomp_codegen::install(&p.compiled, &p.module, &mut vm);
        let regions = (0..p.compiled.regions.len())
            .map(|_| RegionState::default())
            .collect();
        let trace = options
            .trace
            .as_ref()
            .map(|t| Box::new(TraceState::new(t, p.compiled.regions.len())));
        let tiered = options
            .tiered
            .clone()
            .map(|t| TieredState::new(&p.compiled.regions, t, trace.is_some()));
        let faults = options
            .faults
            .as_ref()
            .map(|plan| Box::new(FaultState::new(plan)));
        let recovery = RecoveryState::new(options.recovery.clone(), p.compiled.regions.len());
        let mut native = options.native.then(|| Box::new(NativeState::new()));
        if let Some(ns) = native.as_deref_mut() {
            // Snapshot the static-code extent before any dynamic install
            // grows the code space (chain mode translates exactly this
            // window as one instance), and keep a pristine copy of the
            // words themselves — the lazy install may fire after trap
            // retirement has patched some of them.
            ns.static_end = vm.code.len() as u32;
            if options.native_chain {
                ns.static_code = vm.code.clone();
            }
        }
        Session {
            program,
            vm,
            options,
            regions,
            tiered,
            trace,
            faults,
            recovery,
            native,
        }
    }

    /// The program this session executes.
    pub fn program(&self) -> &Program {
        self.program.borrow()
    }

    /// Build data structures in VM memory.
    pub fn heap(&mut self) -> HeapBuilder<'_> {
        HeapBuilder::new(&mut self.vm.mem)
    }

    /// Call a function by name with raw-bit arguments; returns `r0`.
    ///
    /// # Errors
    /// VM faults, stitching failures, unknown names.
    pub fn call(&mut self, name: &str, args: &[u64]) -> Result<u64, Error> {
        if let Some(ns) = self.native.as_deref_mut() {
            // Call boundary for the static-instance install heuristic:
            // only repeated dispatches *within* one call count as the
            // bounce pattern worth paying the snapshot translate for.
            ns.call_entries = ns.entries;
        }
        let entry = self
            .program
            .borrow()
            .compiled
            .entry_of(name)
            .ok_or_else(|| Error::NoSuchFunction(name.to_string()))?;
        self.vm.setup_call(entry, args)?;
        self.run_to_halt()?;
        Ok(self.vm.reg(0))
    }

    /// Call a double-returning function; returns `f0`.
    ///
    /// # Errors
    /// Same as [`Session::call`].
    pub fn call_f(&mut self, name: &str, args: &[u64]) -> Result<f64, Error> {
        self.call(name, args)?;
        Ok(self.vm.freg(0))
    }

    /// Drive the VM until `Halt`, servicing dynamic-compilation traps.
    fn run_to_halt(&mut self) -> Result<(), Error> {
        loop {
            match self.vm.run()? {
                Stop::Halted => return Ok(()),
                Stop::EnterRegion { region, at } => self.enter_region(region, at)?,
                Stop::EndSetup { region } => self.end_setup(region)?,
                Stop::Native { at } => self.native_dispatch(at)?,
            }
        }
    }

    /// Serve a [`Stop::Native`] dispatch: run the installed host
    /// instance, then resume the VM at the native exit pc (or surface
    /// the identical `VmError` the interpreter would have produced).
    ///
    /// A bail-out that made no progress — fuel too low to charge the
    /// first block, or an entry the translator could not cover — hands
    /// the pc back to the interpreter exactly once
    /// ([`Vm::skip_native_once`]), so execution always advances.
    fn native_dispatch(&mut self, at: u32) -> Result<(), Error> {
        if self.native.is_none() {
            // A stale mark with no backend (cannot happen through the
            // public API): retire it and interpret.
            self.vm.unmark_native(at);
            return Ok(());
        }
        let (out, delta, region) = {
            let ns = self.native.as_mut().expect("checked above");
            let before = ns.backend.chained();
            let out = ns.backend.run(at, &mut self.vm);
            let delta = ns.backend.chained() - before;
            let region = ns
                .backend
                .base_of(at)
                .and_then(|b| ns.region_of.get(&b).copied());
            (out, delta, region)
        };
        // An entry is a dispatch that made progress: a bail-out straight
        // back to the dispatch pc (fuel too short for the first block)
        // and a raced eviction are not entries.
        let progressed = match out {
            dyncomp_native::RunOutcome::Missing => false,
            dyncomp_native::RunOutcome::Exit { pc } => pc != at || delta > 0,
            _ => true,
        };
        if progressed {
            let ns = self.native.as_mut().expect("checked above");
            ns.entries += 1;
            // The bounce heuristic: one call re-dispatching this often
            // is ping-ponging between native code and the VM loop, so
            // the one-time static-snapshot translate will pay for
            // itself. Kernels that enter native once per call never
            // trip it and never pay.
            if !ns.static_attempted && ns.entries - ns.call_entries >= STATIC_CHAIN_THRESHOLD {
                self.install_static_native();
            }
        }
        if delta > 0 {
            match region {
                Some(r) if (r as usize) < self.regions.len() => {
                    self.regions[r as usize].native_chained += delta;
                    self.tr(EventKind::NativeChained {
                        region: r,
                        count: delta,
                    });
                }
                _ => {
                    self.native.as_mut().expect("checked above").static_chained += delta;
                    self.tr(EventKind::NativeChained {
                        region: crate::STATIC_REGION,
                        count: delta,
                    });
                }
            }
        }
        match out {
            dyncomp_native::RunOutcome::Exit { pc } => {
                if pc == at {
                    self.vm.skip_native_once(at);
                }
                self.vm.pc = pc;
                Ok(())
            }
            dyncomp_native::RunOutcome::MemFault { addr } => {
                Err(Error::Vm(VmError::Mem(EvalError::OutOfBounds { addr })))
            }
            dyncomp_native::RunOutcome::DivFault { pc } => {
                Err(Error::Vm(VmError::DivideByZero { pc }))
            }
            dyncomp_native::RunOutcome::Missing => {
                self.vm.unmark_native(at);
                Ok(())
            }
        }
    }

    /// Translate the `len` code words installed at `base` for the native
    /// backend, folding host wall-clock and coverage into the session
    /// counters. Callers must have checked `self.native.is_some()`.
    fn translate_native(&mut self, base: u32, len: u32) -> dyncomp_native::Artifact {
        let start = Instant::now();
        let code = &self.vm.code[base as usize..(base as usize + len as usize)];
        // Chain mode lowers Jmp/Jsr through the dispatch table; region
        // instances carry no guard sleds (those live in the static-code
        // instance, in front of the EnterRegion traps themselves).
        let spec = dyncomp_native::ChainSpec {
            indirect: self.options.native_chain,
            guards: Vec::new(),
            leaders: Vec::new(),
        };
        let artifact = dyncomp_native::translate_with(code, base, &self.vm.model, &spec);
        let ns = self.native.as_mut().expect("caller checked native state");
        ns.translate_ns += start.elapsed().as_nanos() as u64;
        ns.translated_instructions += u64::from(artifact.instructions);
        ns.covered_instructions += u64::from(artifact.covered);
        artifact
    }

    /// Whether `EnterRegion` inline-cache guards may be patched: a guard
    /// hit bypasses the trap handler, so it is only bit-identical when
    /// nothing on the hit path has observable state — no keyed-cache LRU
    /// to touch (capacity bound) and no key predictor to feed (tiering).
    fn guards_enabled(&self) -> bool {
        self.options.native_chain
            && self.options.keyed_cache_capacity.is_none()
            && self.options.tiered.is_none()
    }

    /// Install the whole static code region as one native instance
    /// (chain mode): every supported block leader becomes a dispatch
    /// point and a published chain target, `Jmp`/`Jsr` thread through
    /// the dispatch table, and keyed `EnterRegion` pcs reserve
    /// patchable guard sleds. Attempted once, lazily, when the bounce
    /// heuristic fires ([`STATIC_CHAIN_THRESHOLD`] dispatches within one
    /// call); a decline (nothing lowered, arena refused) leaves the
    /// session on the PR 6 per-instance path. Translation reads the
    /// pristine session-build snapshot, so traps retired before the
    /// install still appear as `EnterRegion` words — their guard sleds
    /// are armed retroactively below.
    fn install_static_native(&mut self) {
        if !self.options.native_chain {
            return;
        }
        let Some(ns) = self.native.as_deref() else {
            return;
        };
        if ns.static_attempted || ns.disabled {
            return;
        }
        let end = ns.static_end;
        self.native
            .as_deref_mut()
            .expect("checked above")
            .static_attempted = true;
        if !dyncomp_native::available() || end == 0 {
            // `maybe_install_native` reports host unavailability once.
            return;
        }
        let guards: Vec<dyncomp_native::GuardSpec> = if self.guards_enabled() {
            self.program
                .borrow()
                .compiled
                .regions
                .iter()
                .filter(|rc| rc.enter_pc < end)
                .map(|rc| dyncomp_native::GuardSpec {
                    pc: rc.enter_pc,
                    keys: rc.key_locs.iter().map(keyslot).collect(),
                })
                .collect()
        } else {
            Vec::new()
        };
        // Region exit continuations must be block leaders: a stitched
        // instance's patched exit blob can only land on a block head
        // (where the block's fuel and cycles are charged), and the
        // static control flow alone often leaves those pcs mid-block.
        let leaders: Vec<u32> = self
            .program
            .borrow()
            .compiled
            .regions
            .iter()
            .flat_map(|rc| rc.exit_pcs.iter().copied())
            .collect();
        let spec = dyncomp_native::ChainSpec {
            indirect: true,
            guards,
            leaders,
        };
        let start = Instant::now();
        let snapshot = std::mem::take(
            &mut self
                .native
                .as_deref_mut()
                .expect("checked above")
                .static_code,
        );
        let artifact = {
            let code = &snapshot[..end as usize];
            dyncomp_native::translate_with(code, 0, &self.vm.model, &spec)
        };
        let ns = self.native.as_deref_mut().expect("checked above");
        ns.translate_ns += start.elapsed().as_nanos() as u64;
        ns.translated_instructions += u64::from(artifact.instructions);
        ns.covered_instructions += u64::from(artifact.covered);
        if ns.backend.install_any(0, &artifact).is_err() {
            return;
        }
        ns.installs += 1;
        ns.region_of.insert(0, crate::STATIC_REGION);
        // Deliberately mark *no* VM dispatch pc for the static snapshot:
        // marking every leader would hand the VM off into many short
        // native runs (one per stretch between unsupported ops), and the
        // per-dispatch FFI overhead of those bounces costs more than the
        // VM interpreting the same stretch. The snapshot is reached only
        // through chained transfers — dispatch-table jumps and patched
        // exits from region instances, and patched entry guards — where
        // control is already native and the transfer is a bare `jmp`.
        ns.marks.insert(0, Vec::new());
        ns.backend.chain(0);
        // Unkeyed regions whose trap retired before this install left
        // their guard sleds unarmed (retirement arms the guard, but the
        // sled did not exist yet). Arm them now; keyed guards re-arm on
        // the next cache hit without help.
        let retired: Vec<(u16, u32)> = self
            .program
            .borrow()
            .compiled
            .regions
            .iter()
            .enumerate()
            .filter(|(_, rc)| rc.key_locs.is_empty())
            .filter_map(|(i, _)| {
                let entry = self.regions[i].cache.get(&[] as &[u64])?;
                Some((i as u16, entry.base))
            })
            .collect();
        for (region, base) in retired {
            self.maybe_patch_guard(region, &[], base);
        }
    }

    /// Request direct threading for the freshly installed instance at
    /// `base`. The fault plan is consulted *before* any availability
    /// check — an injected chain-patch failure is exercised (and
    /// counted) on every host — and a declined request leaves the
    /// instance installed but unchained, excluded from chaining in both
    /// directions.
    fn request_chain(&mut self, region: u16, base: u32) {
        if self.native.is_none() || !self.options.native_chain {
            return;
        }
        if self.fire(FaultPoint::NativeChainPatch, region).is_some() {
            self.record_failure(
                region,
                FailureKind::BackendUnavailable,
                true,
                "injected native chain-patch failure: instance stays unchained".to_string(),
            );
            self.tr(EventKind::NativeUnchained { region });
            return;
        }
        let ns = self.native.as_deref_mut().expect("checked above");
        if ns.disabled || !ns.backend.has(base) {
            return;
        }
        ns.backend.chain(base);
    }

    /// Chain mode: patch the static instance's guard sled at this
    /// region's `EnterRegion` into a direct entry to the chained
    /// instance at `base`.
    ///
    /// Keyed regions (called on a keyed trap hit, `key` non-empty) get
    /// a monomorphic inline cache: the guard compares the live key
    /// locations against `key` and on a hit charges exactly what the
    /// trap path does (1 fuel; trap + lookup + per-key cycles). Unkeyed
    /// regions (called at trap retirement, `key` empty) get an
    /// unconditional entry charging what the VM pays interpreting the
    /// retirement `Br` it replaces (1 fuel; one taken branch). Any miss
    /// — different key, low fuel, unreadable frame slot — falls back to
    /// the VM path, uncharged. At most one guard per region is live at
    /// a time.
    fn maybe_patch_guard(&mut self, region: u16, key: &[u64], base: u32) {
        if !self.guards_enabled() {
            return;
        }
        let Some(ns) = self.native.as_deref() else {
            return;
        };
        if ns.disabled || !ns.backend.has(0) {
            return;
        }
        let rc = &self.program.borrow().compiled.regions[region as usize];
        let enter_pc = rc.enter_pc;
        let keys: Vec<(dyncomp_native::KeySlot, u64)> = rc
            .key_locs
            .iter()
            .zip(key)
            .map(|(l, &v)| (keyslot(l), v))
            .collect();
        let cycles = if key.is_empty() {
            self.vm.model.cost(Op::Br, true)
        } else {
            self.options.trap_cycles
                + self.options.keyed_lookup_cycles
                + self.options.per_key_cycles * key.len() as u64
        };
        let ns = self.native.as_deref_mut().expect("checked above");
        if ns.backend.patch_guard(0, enter_pc, &keys, SP, cycles, base) {
            // The guard lives and dies with its target: record the mark
            // under `base` so severing the instance retires it too.
            ns.marks.entry(base).or_default().push(enter_pc);
            self.vm.mark_native(enter_pc);
        }
    }

    /// Tear down the native instance at `base` (evicted, quarantined,
    /// or shed by the byte-budget ladder): every chain link through it
    /// is severed before its pages are unmapped, and its dispatch marks
    /// are retired so the VM never bounces on a dead pc. Chain mode
    /// only — the unchained backend keeps instances installed for the
    /// append-only code space, exactly as in PR 6.
    fn sever_native(&mut self, region: u16, base: u32) {
        if !self.options.native_chain {
            return;
        }
        let Some(ns) = self.native.as_deref_mut() else {
            return;
        };
        if !ns.backend.remove(base) {
            return;
        }
        ns.region_of.remove(&base);
        let marks = ns.marks.remove(&base).unwrap_or_default();
        for pc in marks {
            self.vm.unmark_native(pc);
        }
        self.tr(EventKind::NativeUnchained { region });
    }

    /// Sever every native instance belonging to `region` (quarantine,
    /// budget degradation): stale chains must never outlive a target the
    /// session will not trust again.
    fn sever_region_native(&mut self, region: u16) {
        if self.native.is_none() || !self.options.native_chain {
            return;
        }
        let bases: Vec<u32> = self.regions[region as usize]
            .instances
            .iter()
            .map(|&(_, b, _)| b)
            .collect();
        for b in bases {
            self.sever_native(region, b);
        }
    }

    /// Attempt a native install for the instance at `base` (all three
    /// install paths funnel through [`Session::index_instance`], which
    /// calls this). Returns the host bytes actually installed, so the
    /// caller can fold them into the byte-budget ladder. Never fails the
    /// session: every degradation leaves the instance running on the VM
    /// backend, recorded as a `backend-unavailable` health entry.
    fn maybe_install_native(&mut self, region: u16, base: u32, len: u32) -> u64 {
        if self.native.is_none() {
            return 0;
        }
        // Consult the fault plan before the availability checks, so an
        // injected arena exhaustion is exercised (and counted) even on
        // hosts where the real backend cannot run.
        if self
            .fire(FaultPoint::NativeArenaExhausted, region)
            .is_some()
        {
            self.record_failure(
                region,
                FailureKind::BackendUnavailable,
                true,
                "injected native-arena exhaustion: instance stays on the VM backend".to_string(),
            );
            return 0;
        }
        let ns = self.native.as_mut().expect("checked above");
        if ns.disabled {
            return 0;
        }
        let pending = ns.pending.take();
        if !dyncomp_native::available() {
            ns.disabled = true;
            if !std::mem::replace(&mut ns.reported, true) {
                self.record_failure(
                    region,
                    FailureKind::BackendUnavailable,
                    false,
                    "native backend unsupported on this host: session runs on the VM backend"
                        .to_string(),
                );
            }
            return 0;
        }
        let artifact = match pending {
            Some((b, a)) if b == base => a,
            _ => self.translate_native(base, len),
        };
        if !artifact.entry_supported {
            self.native.as_mut().expect("checked above").declined += 1;
            return 0;
        }
        let bytes = artifact.bytes.len() as u64;
        let chain = self.options.native_chain;
        let ns = self.native.as_mut().expect("checked above");
        match ns.backend.install(base, &artifact) {
            Ok(()) => {
                ns.installs += 1;
                ns.region_of.insert(base, region);
                // Chain mode marks every dispatchable leader, so the VM
                // re-enters native code mid-instance after any exit;
                // unchained mode keeps the PR 6 base-only mark.
                let marks: Vec<u32> = if chain {
                    artifact.entries.iter().map(|&(pc, _)| pc).collect()
                } else {
                    vec![base]
                };
                ns.marks.insert(base, marks.clone());
                for pc in marks {
                    self.vm.mark_native(pc);
                }
                bytes
            }
            Err(e) => {
                ns.disabled = true;
                self.record_failure(
                    region,
                    FailureKind::BackendUnavailable,
                    false,
                    format!("native install failed: {e}; session runs on the VM backend"),
                );
                0
            }
        }
    }

    /// Read a region's key tuple from the trap-point value locations.
    ///
    /// # Errors
    /// A faulting frame-slot read propagates as [`Error::Vm`]: a bad stack
    /// state must not silently alias distinct cache keys.
    pub(crate) fn read_key(&self, locs: &[ValueLoc]) -> Result<Vec<u64>, Error> {
        let mut key = Vec::with_capacity(locs.len());
        for l in locs {
            key.push(match *l {
                ValueLoc::Reg(r) => self.vm.reg(r),
                ValueLoc::FReg(r) => self.vm.freg(r).to_bits(),
                ValueLoc::Frame(off) => self
                    .vm
                    .mem
                    .read_u64(self.vm.reg(SP).wrapping_add(off as i64 as u64))
                    .map_err(|e| Error::Vm(e.into()))?,
            });
        }
        Ok(key)
    }

    /// Record a trace event stamped with the session clock (a no-op
    /// without [`EngineOptions::trace`]; the `kind` argument is only
    /// constructed at traced call sites).
    #[inline]
    fn tr(&mut self, kind: EventKind) {
        if let Some(t) = self.trace.as_mut() {
            t.emit(self.vm.cycles, ClockDomain::Session, kind);
        }
    }

    /// Relay resolution-point events recorded inside the tiered state
    /// (BgReady stamps live on virtual worker clocks the engine never
    /// sees directly), and fold background failures into the health log.
    fn relay_tiered_events(&mut self) {
        let Some(tiered) = self.tiered.as_mut() else {
            return;
        };
        let events = tiered.take_events();
        let failures = tiered.take_failures();
        if let Some(t) = self.trace.as_mut() {
            for e in events {
                t.emit(e.at, e.clock, e.kind);
            }
        }
        for f in failures {
            self.record_failure(
                f.region,
                FailureKind::Background {
                    panicked: f.panicked,
                },
                f.injected,
                f.message,
            );
        }
    }

    /// Consult the fault plan at an opportunity for `point` in `region`,
    /// returning the injection's magnitude when it fires. Quarantined
    /// regions are exempt: the degraded path they run is trusted
    /// (injected faults model optimized-path failures). A no-op without
    /// [`EngineOptions::faults`].
    fn fire(&mut self, point: FaultPoint, region: u16) -> Option<u64> {
        if self.recovery.is_quarantined(region) {
            return None;
        }
        let magnitude = self.faults.as_mut()?.fire(point, region)?;
        self.drain_injected();
        Some(magnitude)
    }

    /// Fold fires logged inside [`FaultState`] (including ones the tiered
    /// state triggered while the session was borrowed elsewhere) into the
    /// per-region counters and the trace.
    fn drain_injected(&mut self) {
        let Some(f) = self.faults.as_mut() else {
            return;
        };
        for (point, region) in f.drain_pending() {
            self.regions[region as usize].faults_injected += 1;
            self.recovery.note_fault();
            self.tr(EventKind::FaultInjected { region, point });
        }
    }

    /// Record a failure (injected or genuine) into the bounded health
    /// ring, quarantining the region if it crossed the policy threshold.
    fn record_failure(&mut self, region: u16, kind: FailureKind, injected: bool, message: String) {
        let rec = FailureRecord {
            at: self.vm.cycles,
            region,
            kind,
            injected,
            message,
        };
        if self.recovery.record(rec) {
            self.tr(EventKind::Quarantined { region });
            // The quarantined region's optimized instances will never be
            // trusted again: sever any chains into them before the
            // session degrades to set-up or fallback execution.
            self.sever_region_native(region);
        }
    }

    /// Charge the deterministic retry backoff for attempt `attempt`
    /// (linear in the attempt number) and count the retry.
    fn charge_retry(&mut self, region: u16, attempt: u32) {
        let backoff = self.recovery.policy().retry_backoff_cycles * u64::from(attempt);
        self.vm.cycles += backoff;
        self.regions[region as usize].retries += 1;
        self.recovery.note_retry();
        self.tr(EventKind::RecoveryRetry {
            region,
            attempt,
            backoff,
        });
    }

    /// Serve an entry from the region's statically compiled fallback copy
    /// (quarantine, budget exhaustion, or a failed background install).
    fn run_fallback(&mut self, region: u16, fallback_pc: u32) {
        self.regions[region as usize].fallback_runs += 1;
        self.tr(EventKind::FallbackRun { region });
        self.vm.pc = fallback_pc;
    }

    fn enter_region(&mut self, region: u16, _at: u32) -> Result<(), Error> {
        let rc = &self.program.borrow().compiled.regions[region as usize];
        let key = self.read_key(&rc.key_locs)?;
        let keyed = !rc.key_locs.is_empty();
        let (setup_pc, fallback_pc, key_len) = (rc.setup_pc, rc.fallback_pc, rc.key_locs.len());
        self.regions[region as usize].invocations += 1;
        self.vm.cycles += self.options.trap_cycles;
        self.tr(EventKind::RegionEnter { region, keyed });
        if keyed {
            self.vm.cycles +=
                self.options.keyed_lookup_cycles + self.options.per_key_cycles * key_len as u64;
        }
        let cached = self.regions[region as usize].cache.get(&key).copied();
        if keyed {
            self.tr(EventKind::KeyedLookup {
                region,
                hit: cached.is_some(),
            });
        }
        match cached {
            Some(entry) => {
                if keyed {
                    self.regions[region as usize].lru.touch(entry.lru);
                    self.maybe_patch_guard(region, &key, entry.base);
                }
                self.vm.pc = entry.base;
                self.speculate_after(region, &key);
            }
            None => {
                // Quarantined or budget-exhausted regions with a static
                // fallback copy never attempt the optimized path again.
                if let Some(fb) = fallback_pc {
                    if self.recovery.is_quarantined(region) || self.recovery.level() >= 2 {
                        self.run_fallback(region, fb);
                        return Ok(());
                    }
                }
                // Not stitched here yet: consult the process-wide cache
                // before paying for set-up + stitching. A degraded install
                // (injected failure, failed relocation, verifier reject)
                // falls through to the session's own stitch path.
                let installed = match self.shared_lookup(region, &key) {
                    Some(stitched) => self.install_shared(region, key.clone(), &stitched)?,
                    None => false,
                };
                if installed {
                    self.speculate_after(region, &key);
                } else if let (true, Some(fallback)) = (self.tiered.is_some(), fallback_pc) {
                    self.tiered_miss(region, key, fallback, setup_pc)?;
                } else {
                    self.begin_setup(region, key, setup_pc, fallback_pc);
                }
            }
        }
        Ok(())
    }

    /// Redirect to the region's set-up code, pre-flighting injected
    /// set-up traps under the recovery policy. A trap is modeled on a
    /// probe fork of the VM with a small instruction budget
    /// ([`crate::faults::Injection::magnitude`]); the attempt's cycles
    /// are charged to the session, the failure is recorded, and set-up is
    /// retried — or, once the region is quarantined, its fallback copy
    /// (when the artifact has one) serves the entry.
    fn begin_setup(&mut self, region: u16, key: Vec<u64>, setup_pc: u32, fallback_pc: Option<u32>) {
        let mut attempt = 0u32;
        while let Some(fuel) = self.fire(FaultPoint::SetupVmTrap, region) {
            let mut fork = self.vm.clone();
            // The probe fork has no native dispatcher; let it interpret.
            fork.clear_native_marks();
            fork.pc = setup_pc;
            fork.cycles = 0;
            fork.fuel = fuel.max(1);
            let msg = match fork.run() {
                Err(e) => format!("injected VM trap during set-up: {e}"),
                Ok(_) => "injected VM trap during set-up (probe exhausted)".to_string(),
            };
            self.vm.cycles += fork.cycles;
            self.record_failure(region, FailureKind::Setup, true, msg);
            if self.recovery.is_quarantined(region) {
                if let Some(fb) = fallback_pc {
                    self.run_fallback(region, fb);
                    return;
                }
            }
            attempt += 1;
            if attempt > self.recovery.policy().max_retries {
                break;
            }
            self.charge_retry(region, attempt);
        }
        let st = &mut self.regions[region as usize];
        st.pending_key = Some(key);
        st.setup_start = self.vm.cycles;
        self.vm.pc = setup_pc;
        self.tr(EventKind::SetupStart { region });
    }

    /// Tiered mode, cold entry: install a finished background stitch, run
    /// the fallback copy while one is in flight, or (if the background run
    /// failed) stitch synchronously. The jobs-map probe piggybacks on the
    /// trap / keyed-lookup charges already paid by the caller; enqueued
    /// jobs are charged [`TieredOptions::dispatch_cycles`] each.
    fn tiered_miss(
        &mut self,
        region: u16,
        key: Vec<u64>,
        fallback_pc: u32,
        setup_pc: u32,
    ) -> Result<(), Error> {
        let now = self.vm.cycles;
        let (decision, enqueued, dispatch) = {
            let tiered = self.tiered.as_mut().expect("tiered configured");
            let dispatch = tiered.options().dispatch_cycles;
            let (decision, enqueued) = tiered.decide(
                &self.vm,
                region,
                &key,
                &self.options.stitch,
                now,
                self.faults.as_deref_mut(),
            );
            (decision, enqueued, dispatch)
        };
        self.vm.cycles += enqueued * dispatch;
        self.drain_injected();
        self.relay_tiered_events();
        for _ in 0..enqueued {
            self.tr(EventKind::TierDispatch { region });
        }
        match decision {
            TierDecision::Install {
                stitched,
                setup_cycles,
                stitch_cycles,
                speculative,
            } => {
                // Injected arena exhaustion: back off deterministically
                // (the simulated arena grows) before installing.
                let mut attempt = 0u32;
                while self.fire(FaultPoint::CodeArenaExhausted, region).is_some() {
                    self.record_failure(
                        region,
                        FailureKind::Install,
                        true,
                        "injected code-arena exhaustion installing background stitch".to_string(),
                    );
                    attempt += 1;
                    if attempt > self.recovery.policy().max_retries {
                        break;
                    }
                    self.charge_retry(region, attempt);
                }
                // Same bulk copy + relocation (and per-word charge) as a
                // shared-cache install. A relocation failure or a verifier
                // reject consumes the job and degrades this entry to the
                // fallback copy; the next entry re-enqueues.
                let base = self.vm.code.len() as u32;
                let code = match stitched.relocate(base, &mut self.vm.mem) {
                    Ok((code, _lin_addr)) => match verify_code(&code, base) {
                        Ok(()) => code,
                        Err(e) => {
                            self.tr(EventKind::VerifyReject { region });
                            self.record_failure(
                                region,
                                FailureKind::Verify,
                                false,
                                format!(
                                    "background instance rejected by pre-install \
                                     verification: {e}"
                                ),
                            );
                            self.run_fallback(region, fallback_pc);
                            self.speculate_after(region, &key);
                            return Ok(());
                        }
                    },
                    Err(e) => {
                        self.record_failure(
                            region,
                            FailureKind::Install,
                            false,
                            format!("background instance failed to relocate: {e}"),
                        );
                        self.run_fallback(region, fallback_pc);
                        self.speculate_after(region, &key);
                        return Ok(());
                    }
                };
                self.vm.cycles += self.options.shared_install_cycles_per_word * code.len() as u64;
                self.vm.append_code(&code);
                let st = &mut self.regions[region as usize];
                st.bg_installs += 1;
                if speculative {
                    st.spec_installs += 1;
                }
                st.bg_setup_cycles += setup_cycles;
                st.bg_stitch_cycles += stitch_cycles;
                self.tr(EventKind::BgInstall {
                    region,
                    words: code.len() as u32,
                    speculative,
                    setup_cycles,
                    stitch_cycles,
                });
                if speculative {
                    self.tr(EventKind::SpeculateHit { region });
                }
                if let Some(cache) = &self.options.shared_cache {
                    let evicted = cache.insert(
                        SharedKey {
                            program: self.program.borrow().id(),
                            region,
                            key: key.clone(),
                        },
                        Arc::clone(&stitched),
                    );
                    if evicted > 0 {
                        self.tr(EventKind::CacheEvict {
                            region,
                            count: evicted as u64,
                        });
                    }
                }
                self.index_instance(region, key.clone(), base, code.len() as u32)?;
                self.speculate_after(region, &key);
            }
            TierDecision::Fallback => {
                self.regions[region as usize].fallback_runs += 1;
                self.tr(EventKind::FallbackRun { region });
                self.speculate_after(region, &key);
                self.vm.pc = fallback_pc;
            }
            TierDecision::Synchronous => {
                let st = &mut self.regions[region as usize];
                st.pending_key = Some(key);
                st.setup_start = self.vm.cycles;
                self.vm.pc = setup_pc;
                self.tr(EventKind::SetupStart { region });
            }
        }
        Ok(())
    }

    /// Tiered mode: feed the region's key predictor and enqueue predicted
    /// keys (bounded by the in-flight cap), charging dispatch cycles per
    /// job. No-op when tiering or speculation is off, or the region is
    /// unkeyed.
    fn speculate_after(&mut self, region: u16, key: &[u64]) {
        if self.tiered.is_none() || key.is_empty() {
            return;
        }
        let now = self.vm.cycles;
        let (enqueued, dispatch) = {
            let tiered = self.tiered.as_mut().expect("checked above");
            let dispatch = tiered.options().dispatch_cycles;
            let cache = &self.regions[region as usize].cache;
            let is_cached = |k: &[u64]| cache.contains_key(k);
            let enqueued = tiered.observe_and_speculate(
                &self.vm,
                region,
                key,
                &is_cached,
                &self.options.stitch,
                now,
                self.faults.as_deref_mut(),
            );
            (enqueued, dispatch)
        };
        self.vm.cycles += enqueued * dispatch;
        self.drain_injected();
        for _ in 0..enqueued {
            self.tr(EventKind::SpeculateIssue { region });
        }
    }

    /// Probe the shared cache (when configured), charging the probe cost.
    /// An injected poisoned shard abandons the probe: the charge is paid
    /// and the entry proceeds as a miss.
    fn shared_lookup(
        &mut self,
        region: u16,
        key: &[u64],
    ) -> Option<Arc<dyncomp_stitcher::Stitched>> {
        let cache = Arc::clone(self.options.shared_cache.as_ref()?);
        self.vm.cycles += self.options.shared_lookup_cycles;
        if self
            .fire(FaultPoint::SharedCachePoisonedShard, region)
            .is_some()
        {
            self.record_failure(
                region,
                FailureKind::SharedCache,
                true,
                "injected poisoned shared-cache shard: probe abandoned".to_string(),
            );
            self.tr(EventKind::CacheLookup { region, hit: false });
            return None;
        }
        let hit = cache.lookup(&SharedKey {
            program: self.program.borrow().id(),
            region,
            key: key.to_vec(),
        });
        self.tr(EventKind::CacheLookup {
            region,
            hit: hit.is_some(),
        });
        hit
    }

    /// Install another session's stitched instance: bulk copy + base and
    /// linearized-table relocation, charged per word. No set-up code runs
    /// and no stitch is performed. Returns `Ok(false)` when the install
    /// degraded (injected failure, failed relocation, or a verifier
    /// reject): the failure is recorded and the caller falls through to
    /// the session's own set-up + stitch path.
    fn install_shared(
        &mut self,
        region: u16,
        key: Vec<u64>,
        stitched: &dyncomp_stitcher::Stitched,
    ) -> Result<bool, Error> {
        if self.fire(FaultPoint::SharedCacheInstall, region).is_some() {
            self.record_failure(
                region,
                FailureKind::SharedCache,
                true,
                "injected shared-cache install failure".to_string(),
            );
            return Ok(false);
        }
        let base = self.vm.code.len() as u32;
        let code = match stitched.relocate(base, &mut self.vm.mem) {
            Ok((code, _lin_addr)) => code,
            Err(e) => {
                self.record_failure(
                    region,
                    FailureKind::SharedCache,
                    false,
                    format!("shared-cache instance failed to relocate: {e}"),
                );
                return Ok(false);
            }
        };
        if let Err(e) = verify_code(&code, base) {
            self.tr(EventKind::VerifyReject { region });
            self.record_failure(
                region,
                FailureKind::Verify,
                false,
                format!("shared-cache instance rejected by pre-install verification: {e}"),
            );
            return Ok(false);
        }
        self.vm.cycles += self.options.shared_install_cycles_per_word * code.len() as u64;
        self.vm.append_code(&code);
        self.regions[region as usize].shared_hits += 1;
        self.tr(EventKind::CacheInstall {
            region,
            words: code.len() as u32,
        });
        self.index_instance(region, key, base, code.len() as u32)?;
        Ok(true)
    }

    /// One stitch attempt for `region` at code address `base`: consult
    /// the fault plan (injected bad template, post-stitch corruption),
    /// degrade to interpretive stitching when the budget ladder or
    /// quarantine demands it, and run the pre-install verifier over the
    /// result. Never installs anything.
    fn stitch_once(
        &mut self,
        region: u16,
        table: u64,
        base: u32,
    ) -> Result<dyncomp_stitcher::Stitched, StitchFailure> {
        if self.fire(FaultPoint::StitchBadTemplate, region).is_some() {
            return Err(StitchFailure::Retryable(
                FailureKind::Stitch,
                true,
                "injected stitch failure: malformed template".to_string(),
            ));
        }
        // Recording plan patches is host-side bookkeeping only (no stats,
        // no cycles); request it only when there is a trace to feed. The
        // degradation ladder's first step (and quarantine without a
        // fallback copy) turns copy-and-patch plans off — interpretive
        // stitching, bit-identical output, no plan bookkeeping.
        let record = self.trace.is_some() && !self.options.stitch.record_patches;
        let degrade_plans = self.options.stitch.plans
            && (self.recovery.level() >= 1 || self.recovery.is_quarantined(region));
        let stitch_opts = if record || degrade_plans {
            let mut o = self.options.stitch.clone();
            o.record_patches = o.record_patches || record;
            o.plans = o.plans && !degrade_plans;
            Some(o)
        } else {
            None
        };
        let rc = &self.program.borrow().compiled.regions[region as usize];
        let mut stitched = dyncomp_stitcher::stitch(
            rc,
            table,
            &mut self.vm.mem,
            base,
            stitch_opts.as_ref().unwrap_or(&self.options.stitch),
        )
        .map_err(StitchFailure::Fatal)?;
        let corrupted =
            self.fire(FaultPoint::CodeCorruption, region).is_some() && !stitched.code.is_empty();
        if corrupted {
            // Flip an instruction-start word (never an `Ldiw` payload,
            // which no decoder could fault on) to a value nothing
            // decodes: the pre-install verifier must catch it.
            let starts = instruction_starts(&stitched.code);
            let f = self.faults.as_mut().expect("a fault just fired");
            let pick = f.draw_below(starts.len() as u64) as usize;
            stitched.code[starts[pick]] = 0xFF00_0000;
        }
        if let Err(e) = verify_code(&stitched.code, base) {
            self.tr(EventKind::VerifyReject { region });
            return Err(StitchFailure::Retryable(
                FailureKind::Verify,
                corrupted,
                format!("pre-install verification rejected instance: {e}"),
            ));
        }
        Ok(stitched)
    }

    fn end_setup(&mut self, region: u16) -> Result<(), Error> {
        let table = self.vm.reg(CTP);
        let setup_delta = self.vm.cycles - self.regions[region as usize].setup_start;
        self.tr(EventKind::SetupEnd {
            region,
            cycles: setup_delta,
        });
        // Stitch under the recovery policy: injected stitch failures and
        // verifier rejects (corrupted instances) are retried with a
        // deterministic backoff up to the policy cap; a genuine stitcher
        // error propagates unchanged, exactly as before this layer
        // existed.
        let mut attempt = 0u32;
        let (mut stitched, base) = loop {
            self.tr(EventKind::StitchStart { region });
            let base = self.vm.code.len() as u32;
            match self.stitch_once(region, table, base) {
                Ok(s) => break (s, base),
                Err(StitchFailure::Fatal(e)) => {
                    self.record_failure(region, FailureKind::Stitch, false, e.to_string());
                    return Err(Error::Stitch(e));
                }
                Err(StitchFailure::Retryable(kind, injected, msg)) => {
                    self.record_failure(region, kind, injected, msg.clone());
                    attempt += 1;
                    if attempt > self.recovery.policy().max_retries {
                        return Err(Error::Stitch(dyncomp_stitcher::StitchError::BadTemplate(
                            msg,
                        )));
                    }
                    self.charge_retry(region, attempt);
                }
            }
        };
        // Injected arena exhaustion: back off deterministically (the
        // simulated arena grows) before installing.
        let mut attempt = 0u32;
        while self.fire(FaultPoint::CodeArenaExhausted, region).is_some() {
            self.record_failure(
                region,
                FailureKind::Install,
                true,
                "injected code-arena exhaustion during install".to_string(),
            );
            attempt += 1;
            if attempt > self.recovery.policy().max_retries {
                break;
            }
            self.charge_retry(region, attempt);
        }
        self.vm.append_code(&stitched.code);
        let code_len = stitched.code.len() as u32;

        // Pre-translate for the native backend so the instance published
        // to the shared cache carries its native footprint (byte-budgeted
        // shards then govern both backends). The artifact is stashed for
        // `index_instance`, which performs the actual install.
        if self.native.is_some() {
            let artifact = self.translate_native(base, code_len);
            stitched.native_bytes = if artifact.entry_supported {
                artifact.bytes.len() as u64
            } else {
                0
            };
            self.native.as_mut().expect("checked above").pending = Some((base, artifact));
        }

        let st = &mut self.regions[region as usize];
        st.setup_cycles += setup_delta;
        st.stitches += 1;
        accumulate(&mut st.stitch, &stitched.stats);
        st.tables.push(table);
        let key = st.pending_key.take().unwrap_or_default();
        let s = &stitched.stats;
        self.tr(EventKind::StitchEnd {
            region,
            cycles: s.cycles,
            instructions: s.instructions_stitched,
            holes_inline: s.holes_inline,
            holes_big: s.holes_big,
            const_branches: s.const_branches_resolved,
            loop_iterations: s.loop_iterations,
            plan_hits: s.plan_hits,
            plan_misses: s.plan_misses,
        });
        for p in &stitched.plan_patches {
            self.tr(EventKind::PlanPatch {
                region,
                word: p.at,
                value: p.value,
            });
        }
        // Replay the compile-time inline sites this instance benefits
        // from: one event per site per synchronous stitch, mirrored in
        // the report counter so `trace_self_check` covers the pass.
        let inlined: Vec<(u32, u32)> = self
            .program
            .borrow()
            .inline_sites_for(region)
            .map(|s| (s.callee.index() as u32, s.depth))
            .collect();
        for (callee, depth) in inlined {
            self.regions[region as usize].inlined_calls += 1;
            self.tr(EventKind::Inlined {
                region,
                callee,
                depth,
            });
        }

        // Publish to the process-wide cache so other sessions can skip
        // set-up and stitching for this (region, key).
        if let Some(cache) = &self.options.shared_cache {
            let evicted = cache.insert(
                SharedKey {
                    program: self.program.borrow().id(),
                    region,
                    key: key.clone(),
                },
                Arc::new(stitched),
            );
            if evicted > 0 {
                self.tr(EventKind::CacheEvict {
                    region,
                    count: evicted as u64,
                });
            }
        }

        self.index_instance(region, key, base, code_len)?;
        Ok(())
    }

    /// Record a freshly installed instance (stitched here or copied from
    /// the shared cache): instance history, keyed cache + LRU (with
    /// capacity eviction), unkeyed trap retirement, and resume at `base`.
    ///
    /// # Errors
    /// [`Error::Vm`] if the unkeyed trap-retirement branch does not encode
    /// or the trap site is out of code range (a code space grown past the
    /// branch displacement range, not an internal invariant).
    fn index_instance(
        &mut self,
        region: u16,
        key: Vec<u64>,
        base: u32,
        len: u32,
    ) -> Result<(), Error> {
        // Offer the instance to the native backend first: the host bytes
        // it actually installs count against the same byte budget as the
        // stitched code words, so `with_byte_budget` and the degradation
        // ladder govern both backends.
        let native_bytes = self.maybe_install_native(region, base, len);
        // Then request direct threading for it: publish its blocks in
        // the dispatch table and back-patch every exit blob that now has
        // a native continuation (its own and other chained instances').
        self.request_chain(region, base);
        // Account the installed bytes against the session's code budget;
        // crossing a ladder step is a trace event (the step itself takes
        // effect at the next stitch / entry). At level 2 the ladder
        // sheds optimized execution for the region, so its native
        // instances are severed — a stale chain must not outlive them.
        let mut degraded = false;
        if let Some(level) = self.recovery.add_bytes(4 * u64::from(len) + native_bytes) {
            self.tr(EventKind::BudgetDegrade { region, level });
            degraded = level >= 2;
        }
        let rc = &self.program.borrow().compiled.regions[region as usize];
        let (keyed, enter_pc) = (!rc.key_locs.is_empty(), rc.enter_pc);
        let st = &mut self.regions[region as usize];
        st.instances.push((key.clone(), base, len));
        let mut evicted = 0u64;
        let mut evicted_bases: Vec<u32> = Vec::new();
        let lru = if keyed {
            if let Some(cap) = self.options.keyed_cache_capacity {
                while st.cache.len() >= cap.max(1) {
                    match st.lru.pop_lru() {
                        Some(victim) => {
                            if let Some(e) = st.cache.remove(&victim) {
                                evicted_bases.push(e.base);
                            }
                            st.evictions += 1;
                            evicted += 1;
                        }
                        None => break,
                    }
                }
            }
            st.lru.insert(key.clone())
        } else {
            usize::MAX // unkeyed: the trap is patched away below
        };
        st.cache.insert(key, CacheEntry { base, lru });
        for _ in 0..evicted {
            self.tr(EventKind::KeyedEvict { region });
        }
        // Sever chains into evicted instances *before* anything can
        // dispatch again: their keys are gone from the cache, so the
        // next entry with them re-stitches at a fresh base.
        for b in evicted_bases {
            self.sever_native(region, b);
        }
        if degraded {
            self.sever_region_native(region);
        }

        // Unkeyed regions: retire the trap — patch EnterRegion into a
        // direct branch to the stitched code (§1: the templates "become
        // part of the application").
        if !keyed {
            let disp = base as i64 - (enter_pc as i64 + 1);
            let (w, _) = encode(&Inst::branch(
                Op::Br,
                dyncomp_machine::isa::ZERO,
                disp as i32,
            ))
            .map_err(|e| {
                Error::Stitch(dyncomp_stitcher::StitchError::BadTemplate(format!(
                    "trap-retirement branch to stitched code does not encode \
                     (region {region}, base {base}, enter_pc {enter_pc}): {e}"
                )))
            })?;
            self.vm.patch_code(enter_pc, w)?;
            // The static snapshot still holds the stale `EnterRegion` at
            // this pc; patch its guard sled into an unconditional entry
            // so chained control need not bounce through the VM to take
            // the retired branch.
            self.maybe_patch_guard(region, &[], base);
        }

        self.vm.pc = base;
        Ok(())
    }

    /// Measurement report for region `index`.
    pub fn region_report(&self, index: usize) -> RegionReport {
        let st = &self.regions[index];
        RegionReport {
            invocations: st.invocations,
            stitches: st.stitches,
            shared_hits: st.shared_hits,
            setup_cycles: st.setup_cycles,
            stitch_cycles: st.stitch.cycles,
            instructions_stitched: st.stitch.instructions_stitched,
            stitch_stats: st.stitch,
            evictions: st.evictions,
            fallback_runs: st.fallback_runs,
            bg_installs: st.bg_installs,
            spec_installs: st.spec_installs,
            bg_setup_cycles: st.bg_setup_cycles,
            bg_stitch_cycles: st.bg_stitch_cycles,
            faults_injected: st.faults_injected,
            retries: st.retries,
            inlined_calls: st.inlined_calls,
            native_chained: st.native_chained,
        }
    }

    /// Total VM cycles so far.
    pub fn cycles(&self) -> u64 {
        self.vm.cycles
    }

    /// The trace state, when [`EngineOptions::trace`] was configured.
    pub fn trace(&self) -> Option<&TraceState> {
        self.trace.as_deref()
    }

    /// Whether `region`'s background stitch path panicked and the region
    /// is permanently pinned to its static fallback copy. Always `false`
    /// without tiered execution.
    pub fn region_pinned(&self, region: u16) -> bool {
        self.tiered.as_ref().is_some_and(|t| t.is_pinned(region))
    }

    /// A snapshot of the session's robustness state: the bounded failure
    /// log, quarantined regions, injected-fault and retry counts, and the
    /// degradation-ladder level. Cheap; safe to poll.
    pub fn health(&self) -> HealthReport {
        self.recovery.report()
    }

    /// Host-native backend counters. All-zero (with `enabled: false`)
    /// when [`EngineOptions::native`] was not set.
    pub fn native_report(&self) -> NativeReport {
        match self.native.as_deref() {
            None => NativeReport::default(),
            Some(ns) => NativeReport {
                enabled: true,
                active: !ns.disabled && dyncomp_native::available(),
                installs: ns.installs,
                declined: ns.declined,
                entries: ns.entries,
                chained: ns.backend.chained(),
                bytes: ns.backend.bytes(),
                translate_ns: ns.translate_ns,
                translated_instructions: ns.translated_instructions,
                covered_instructions: ns.covered_instructions,
            },
        }
    }

    /// Message from the most recent background stitch failure (error or
    /// panic), for diagnostics. `None` when no background job has failed
    /// (or its record aged out of the bounded log — see
    /// [`Session::health`] for the full picture).
    pub fn last_background_failure(&self) -> Option<&str> {
        self.recovery
            .failures()
            .rev()
            .find(|r| matches!(r.kind, FailureKind::Background { .. }))
            .map(|r| r.message.as_str())
    }

    /// Per-region trace aggregates ([`RegionProfile`]), when tracing.
    pub fn region_profiles(&self) -> Option<&[RegionProfile]> {
        self.trace.as_ref().map(|t| t.profiles())
    }

    /// Seal the trace (synthesizing `SpeculateWaste` events once) and
    /// render it as JSON Lines. `None` when tracing is off.
    pub fn trace_jsonl(&mut self) -> Option<String> {
        let now = self.vm.cycles;
        self.trace.as_mut().map(|t| {
            t.seal(now);
            t.render_jsonl()
        })
    }

    /// Seal the trace and render it in Chrome `trace_event` JSON.
    /// `None` when tracing is off.
    pub fn trace_chrome(&mut self) -> Option<String> {
        let now = self.vm.cycles;
        self.trace.as_mut().map(|t| {
            t.seal(now);
            t.render_chrome()
        })
    }

    /// Assert that cycle attribution summed over trace events equals the
    /// per-region [`RegionReport`] counters exactly. `Ok(())` when tracing
    /// is off (nothing to check).
    ///
    /// # Errors
    /// [`Error::Trace`] naming the first mismatching counter.
    pub fn trace_self_check(&self) -> Result<(), Error> {
        let Some(t) = self.trace.as_ref() else {
            return Ok(());
        };
        let reports: Vec<RegionReport> = (0..self.regions.len())
            .map(|i| self.region_report(i))
            .collect();
        t.self_check(&reports).map_err(Error::Trace)
    }

    /// Re-run the stitcher over every `(region, constants table)` pair
    /// stitched so far, under `opts`, without installing the result —
    /// the set-up code's tables are still live in data memory, so this
    /// re-measures pure stitching work (for throughput benches and
    /// ablations). Returns the accumulated stats of the extra runs; the
    /// session's own per-region reports are unaffected.
    ///
    /// # Errors
    /// Stitching failures (same as the original stitches).
    pub fn restitch_all(&mut self, opts: &StitchOptions) -> Result<StitchStats, Error> {
        let mut total = StitchStats::default();
        let base = self.vm.code.len() as u32;
        let program = self.program.borrow();
        for (idx, rc) in program.compiled.regions.iter().enumerate() {
            for &table in &self.regions[idx].tables {
                let s = dyncomp_stitcher::stitch(rc, table, &mut self.vm.mem, base, opts)?;
                accumulate(&mut total, &s.stats);
            }
        }
        Ok(total)
    }

    /// Every stitched instance region `index` has produced so far, as
    /// `(key, code)` pairs in stitch order. Unkeyed regions use the empty
    /// key. Instances survive cache eviction (code space is append-only),
    /// so this is the full history, not the current cache contents.
    pub fn stitched_instances(&self, index: usize) -> Vec<(&[u64], &[u32])> {
        self.regions[index]
            .instances
            .iter()
            .map(|(key, base, len)| {
                (
                    key.as_slice(),
                    &self.vm.code[*base as usize..(*base + *len) as usize],
                )
            })
            .collect()
    }
}

/// A failed stitch attempt: retryable under the recovery policy, or a
/// genuine stitcher error propagated unchanged.
enum StitchFailure {
    /// `(kind, injected, message)` — retried with backoff up to the cap.
    Retryable(FailureKind, bool, String),
    /// A real [`dyncomp_stitcher::StitchError`]: deterministic, so
    /// retrying cannot help; the caller propagates it as-is.
    Fatal(dyncomp_stitcher::StitchError),
}

/// Mirror a region-key [`ValueLoc`] into the native translator's
/// [`dyncomp_native::KeySlot`] (same kinds, crate-local type).
fn keyslot(l: &ValueLoc) -> dyncomp_native::KeySlot {
    match *l {
        ValueLoc::Reg(r) => dyncomp_native::KeySlot::Reg(r),
        ValueLoc::FReg(r) => dyncomp_native::KeySlot::FReg(r),
        ValueLoc::Frame(off) => dyncomp_native::KeySlot::Frame(off),
    }
}

/// Word positions in `code` that begin an instruction (never an `Ldiw`
/// payload word — corrupting a payload is invisible to any decoder).
fn instruction_starts(code: &[u32]) -> Vec<usize> {
    let mut starts = Vec::new();
    let mut i = 0usize;
    while i < code.len() {
        starts.push(i);
        let wide = decode(code[i], code.get(i + 1).copied())
            .map(|inst| inst.is_wide())
            .unwrap_or(false);
        i += if wide { 2 } else { 1 };
    }
    starts
}

fn accumulate(into: &mut StitchStats, s: &StitchStats) {
    into.instructions_stitched += s.instructions_stitched;
    into.words_emitted += s.words_emitted;
    into.holes_inline += s.holes_inline;
    into.holes_big += s.holes_big;
    into.const_branches_resolved += s.const_branches_resolved;
    into.blocks_skipped += s.blocks_skipped;
    into.loop_iterations += s.loop_iterations;
    into.strength_reductions += s.strength_reductions;
    into.regaction_loads_removed += s.regaction_loads_removed;
    into.regaction_stores_rewritten += s.regaction_stores_rewritten;
    into.regaction_promoted += s.regaction_promoted;
    into.plan_hits += s.plan_hits;
    into.plan_misses += s.plan_misses;
    into.cycles += s.cycles;
}
