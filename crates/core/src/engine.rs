//! The run-time engine: executes compiled programs on the simulated
//! machine, servicing dynamic-compilation traps.
//!
//! On the first entry to a dynamic region the engine redirects execution
//! to the region's set-up code (measured in VM cycles, like everything the
//! program itself runs); at the `EndSetup` trap it invokes the stitcher on
//! the filled constants table, installs the stitched code at the end of
//! the code space, and resumes there. Unkeyed regions then have their
//! `EnterRegion` instruction patched into a direct branch, so later
//! executions pay only a branch — the paper's "the dynamically-compiled
//! templates become part of the application". Keyed regions keep the trap
//! and pay a cache-lookup cost per entry, with one stitched instance per
//! distinct key tuple.

use crate::{Error, Program};
use dyncomp_machine::heap::HeapBuilder;
use dyncomp_machine::isa::{encode, Inst, Op, CTP, SP};
use dyncomp_machine::template::ValueLoc;
use dyncomp_machine::vm::{Stop, Vm};
use dyncomp_ir::fxhash::FxHashMap;
use dyncomp_stitcher::{StitchOptions, StitchStats};

/// Engine configuration.
#[derive(Clone, Debug)]
pub struct EngineOptions {
    /// Data memory size in bytes.
    pub memory_bytes: usize,
    /// Stitcher options (peephole, linearized table, cost model).
    pub stitch: StitchOptions,
    /// Cycles charged for an `EnterRegion` trap serviced by the runtime.
    pub trap_cycles: u64,
    /// Cycles charged for a keyed code-cache lookup (plus per-key
    /// hash/compare). The default models the O(1) hashed lookup the
    /// engine implements (one hash-bucket probe plus an O(1) LRU splice);
    /// see EXPERIMENTS.md for the recalibration from the earlier
    /// linear-probe model.
    pub keyed_lookup_cycles: u64,
    /// Per-key-word hash-and-compare cycles in the keyed lookup.
    pub per_key_cycles: u64,
    /// Maximum stitched instances kept per keyed region (`None` =
    /// unbounded, the paper's model). When the cache is full the
    /// least-recently-entered key is evicted: its mapping is dropped and
    /// the region re-stitches on the next entry with that key. Code space
    /// itself is append-only (stitched code "becomes part of the
    /// application"), so eviction reclaims cache slots, not code words.
    pub keyed_cache_capacity: Option<usize>,
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions {
            memory_bytes: 1 << 24,
            stitch: StitchOptions::default(),
            trap_cycles: 18,
            keyed_lookup_cycles: 16,
            per_key_cycles: 4,
            keyed_cache_capacity: None,
        }
    }
}

/// A keyed-cache entry: where the instance was installed and which LRU
/// slot tracks its recency.
#[derive(Clone, Copy, Debug)]
struct CacheEntry {
    /// Code address of the stitched instance.
    base: u32,
    /// Index into [`LruOrder::slots`] (`usize::MAX` for unkeyed regions,
    /// which never take the lookup path after their trap is patched away).
    lru: usize,
}

/// Doubly-linked recency order over the keyed cache's entries: O(1)
/// touch-on-hit, push, and least-recently-used eviction, independent of
/// cache size. Slot indices are stable (freed slots recycle through a
/// free list), so [`CacheEntry::lru`] stays valid until eviction.
#[derive(Debug, Default)]
struct LruOrder {
    slots: Vec<LruSlot>,
    /// Least recently used end (eviction victim).
    head: Option<usize>,
    /// Most recently used end.
    tail: Option<usize>,
    free: Vec<usize>,
}

#[derive(Debug)]
struct LruSlot {
    key: Vec<u64>,
    prev: Option<usize>,
    next: Option<usize>,
}

impl LruOrder {
    fn unlink(&mut self, i: usize) {
        let (p, n) = (self.slots[i].prev, self.slots[i].next);
        match p {
            Some(p) => self.slots[p].next = n,
            None => self.head = n,
        }
        match n {
            Some(n) => self.slots[n].prev = p,
            None => self.tail = p,
        }
        self.slots[i].prev = None;
        self.slots[i].next = None;
    }

    fn push_back(&mut self, i: usize) {
        self.slots[i].prev = self.tail;
        self.slots[i].next = None;
        match self.tail {
            Some(t) => self.slots[t].next = Some(i),
            None => self.head = Some(i),
        }
        self.tail = Some(i);
    }

    /// Append `key` at the most-recently-used end; returns its slot.
    fn insert(&mut self, key: Vec<u64>) -> usize {
        let slot = LruSlot {
            key,
            prev: None,
            next: None,
        };
        let i = match self.free.pop() {
            Some(i) => {
                self.slots[i] = slot;
                i
            }
            None => {
                self.slots.push(slot);
                self.slots.len() - 1
            }
        };
        self.push_back(i);
        i
    }

    /// Move slot `i` to the most-recently-used end.
    fn touch(&mut self, i: usize) {
        if self.tail != Some(i) {
            self.unlink(i);
            self.push_back(i);
        }
    }

    /// Remove and return the least-recently-used key.
    fn pop_lru(&mut self) -> Option<Vec<u64>> {
        let i = self.head?;
        self.unlink(i);
        self.free.push(i);
        Some(std::mem::take(&mut self.slots[i].key))
    }
}

/// Per-region run-time bookkeeping.
#[derive(Debug, Default)]
struct RegionState {
    /// Stitched instances by key tuple (unkeyed regions use the empty
    /// key). The key hash is computed once per entry; [`FxHashMap`] keeps
    /// the per-lookup constant small.
    cache: FxHashMap<Vec<u64>, CacheEntry>,
    /// Recency order over `cache` (for bounded caches).
    lru: LruOrder,
    /// Constants-table address of every stitch performed, in stitch order
    /// (for [`Engine::restitch_all`]).
    tables: Vec<u64>,
    /// Every stitched instance ever produced: (key, code base, length in
    /// words). Survives eviction — code space is append-only.
    instances: Vec<(Vec<u64>, u32, u32)>,
    /// Cache entries dropped to stay within the configured capacity.
    evictions: u64,
    /// Key recorded at `EnterRegion`, consumed at `EndSetup`.
    pending_key: Option<Vec<u64>>,
    /// Cycle counter value when set-up started.
    setup_start: u64,
    /// Accumulated set-up cycles (VM-measured).
    setup_cycles: u64,
    /// Accumulated stitcher statistics.
    stitch: StitchStats,
    /// Number of stitches performed.
    stitches: u32,
    /// Region entries observed (including fast-path re-entries only for
    /// keyed regions; patched unkeyed regions bypass the trap, so the
    /// engine counts their entries via [`Engine::call`]'s bookkeeping).
    invocations: u64,
}

/// Per-region measurement report (feeds Table 2 / Table 3).
#[derive(Clone, Copy, Debug, Default)]
pub struct RegionReport {
    /// Region entries observed by the engine.
    pub invocations: u64,
    /// Times the region was dynamically compiled.
    pub stitches: u32,
    /// VM cycles spent in set-up code.
    pub setup_cycles: u64,
    /// Simulated stitcher cycles.
    pub stitch_cycles: u64,
    /// Instructions the stitcher emitted.
    pub instructions_stitched: u32,
    /// Accumulated stitcher counters.
    pub stitch_stats: StitchStats,
    /// Keyed-cache entries evicted to respect
    /// [`EngineOptions::keyed_cache_capacity`].
    pub evictions: u64,
}

/// The execution engine.
pub struct Engine<'p> {
    program: &'p Program,
    /// The simulated machine (public for harnesses that need cycle counts
    /// or direct memory access).
    pub vm: Vm,
    options: EngineOptions,
    regions: Vec<RegionState>,
}

impl<'p> Engine<'p> {
    /// An engine with default options.
    pub fn new(program: &'p Program) -> Self {
        Self::with_options(program, EngineOptions::default())
    }

    /// An engine with explicit options.
    pub fn with_options(program: &'p Program, options: EngineOptions) -> Self {
        let mut vm = Vm::new(options.memory_bytes);
        dyncomp_codegen::install(&program.compiled, &program.module, &mut vm);
        let regions = (0..program.compiled.regions.len())
            .map(|_| RegionState::default())
            .collect();
        Engine {
            program,
            vm,
            options,
            regions,
        }
    }

    /// Build data structures in VM memory.
    pub fn heap(&mut self) -> HeapBuilder<'_> {
        HeapBuilder::new(&mut self.vm.mem)
    }

    /// Call a function by name with raw-bit arguments; returns `r0`.
    ///
    /// # Errors
    /// VM faults, stitching failures, unknown names.
    pub fn call(&mut self, name: &str, args: &[u64]) -> Result<u64, Error> {
        let entry = self
            .program
            .compiled
            .entry_of(name)
            .ok_or_else(|| Error::NoSuchFunction(name.to_string()))?;
        self.vm.setup_call(entry, args);
        self.run_to_halt()?;
        Ok(self.vm.reg(0))
    }

    /// Call a double-returning function; returns `f0`.
    ///
    /// # Errors
    /// Same as [`Engine::call`].
    pub fn call_f(&mut self, name: &str, args: &[u64]) -> Result<f64, Error> {
        self.call(name, args)?;
        Ok(self.vm.freg(0))
    }

    /// Drive the VM until `Halt`, servicing dynamic-compilation traps.
    fn run_to_halt(&mut self) -> Result<(), Error> {
        loop {
            match self.vm.run()? {
                Stop::Halted => return Ok(()),
                Stop::EnterRegion { region, at } => self.enter_region(region, at)?,
                Stop::EndSetup { region } => self.end_setup(region)?,
            }
        }
    }

    fn read_key(&self, locs: &[ValueLoc]) -> Vec<u64> {
        locs.iter()
            .map(|l| match *l {
                ValueLoc::Reg(r) => self.vm.reg(r),
                ValueLoc::FReg(r) => self.vm.freg(r).to_bits(),
                ValueLoc::Frame(off) => self
                    .vm
                    .mem
                    .read_u64(self.vm.reg(SP).wrapping_add(off as i64 as u64))
                    .unwrap_or(0),
            })
            .collect()
    }

    fn enter_region(&mut self, region: u16, _at: u32) -> Result<(), Error> {
        let rc = &self.program.compiled.regions[region as usize];
        let key = self.read_key(&rc.key_locs);
        let st = &mut self.regions[region as usize];
        st.invocations += 1;
        self.vm.cycles += self.options.trap_cycles;
        if !rc.key_locs.is_empty() {
            self.vm.cycles += self.options.keyed_lookup_cycles
                + self.options.per_key_cycles * rc.key_locs.len() as u64;
        }
        match st.cache.get(&key).copied() {
            Some(entry) => {
                if !rc.key_locs.is_empty() {
                    st.lru.touch(entry.lru);
                }
                self.vm.pc = entry.base;
            }
            None => {
                st.pending_key = Some(key);
                st.setup_start = self.vm.cycles;
                self.vm.pc = rc.setup_pc;
            }
        }
        Ok(())
    }

    fn end_setup(&mut self, region: u16) -> Result<(), Error> {
        let rc = &self.program.compiled.regions[region as usize];
        let table = self.vm.reg(CTP);
        let base = self.vm.code.len() as u32;
        let stitched =
            dyncomp_stitcher::stitch(rc, table, &mut self.vm.mem, base, &self.options.stitch)?;
        self.vm.append_code(&stitched.code);

        let st = &mut self.regions[region as usize];
        st.setup_cycles += self.vm.cycles - st.setup_start;
        st.stitches += 1;
        accumulate(&mut st.stitch, &stitched.stats);
        st.tables.push(table);
        let key = st.pending_key.take().unwrap_or_default();
        st.instances
            .push((key.clone(), base, stitched.code.len() as u32));
        let lru = if rc.key_locs.is_empty() {
            usize::MAX // unkeyed: the trap is patched away below
        } else {
            if let Some(cap) = self.options.keyed_cache_capacity {
                while st.cache.len() >= cap.max(1) {
                    match st.lru.pop_lru() {
                        Some(victim) => {
                            st.cache.remove(&victim);
                            st.evictions += 1;
                        }
                        None => break,
                    }
                }
            }
            st.lru.insert(key.clone())
        };
        st.cache.insert(key, CacheEntry { base, lru });

        // Unkeyed regions: retire the trap — patch EnterRegion into a
        // direct branch to the stitched code (§1: the templates "become
        // part of the application").
        if rc.key_locs.is_empty() {
            let disp = base as i64 - (rc.enter_pc as i64 + 1);
            let (w, _) = encode(&Inst::branch(
                Op::Br,
                dyncomp_machine::isa::ZERO,
                disp as i32,
            ))
            .expect("patch branch encodes");
            self.vm.patch_code(rc.enter_pc, w);
        }

        self.vm.pc = base;
        Ok(())
    }

    /// Measurement report for region `index`.
    pub fn region_report(&self, index: usize) -> RegionReport {
        let st = &self.regions[index];
        RegionReport {
            invocations: st.invocations,
            stitches: st.stitches,
            setup_cycles: st.setup_cycles,
            stitch_cycles: st.stitch.cycles,
            instructions_stitched: st.stitch.instructions_stitched,
            stitch_stats: st.stitch,
            evictions: st.evictions,
        }
    }

    /// Total VM cycles so far.
    pub fn cycles(&self) -> u64 {
        self.vm.cycles
    }

    /// Re-run the stitcher over every `(region, constants table)` pair
    /// stitched so far, under `opts`, without installing the result —
    /// the set-up code's tables are still live in data memory, so this
    /// re-measures pure stitching work (for throughput benches and
    /// ablations). Returns the accumulated stats of the extra runs; the
    /// engine's own per-region reports are unaffected.
    ///
    /// # Errors
    /// Stitching failures (same as the original stitches).
    pub fn restitch_all(&mut self, opts: &StitchOptions) -> Result<StitchStats, Error> {
        let mut total = StitchStats::default();
        let base = self.vm.code.len() as u32;
        for (idx, rc) in self.program.compiled.regions.iter().enumerate() {
            for &table in &self.regions[idx].tables {
                let s = dyncomp_stitcher::stitch(rc, table, &mut self.vm.mem, base, opts)?;
                accumulate(&mut total, &s.stats);
            }
        }
        Ok(total)
    }

    /// Every stitched instance region `index` has produced so far, as
    /// `(key, code)` pairs in stitch order. Unkeyed regions use the empty
    /// key. Instances survive cache eviction (code space is append-only),
    /// so this is the full history, not the current cache contents.
    pub fn stitched_instances(&self, index: usize) -> Vec<(&[u64], &[u32])> {
        self.regions[index]
            .instances
            .iter()
            .map(|(key, base, len)| {
                (
                    key.as_slice(),
                    &self.vm.code[*base as usize..(*base + *len) as usize],
                )
            })
            .collect()
    }
}

fn accumulate(into: &mut StitchStats, s: &StitchStats) {
    into.instructions_stitched += s.instructions_stitched;
    into.words_emitted += s.words_emitted;
    into.holes_inline += s.holes_inline;
    into.holes_big += s.holes_big;
    into.const_branches_resolved += s.const_branches_resolved;
    into.blocks_skipped += s.blocks_skipped;
    into.loop_iterations += s.loop_iterations;
    into.strength_reductions += s.strength_reductions;
    into.regaction_loads_removed += s.regaction_loads_removed;
    into.regaction_stores_rewritten += s.regaction_stores_rewritten;
    into.regaction_promoted += s.regaction_promoted;
    into.plan_hits += s.plan_hits;
    into.plan_misses += s.plan_misses;
    into.cycles += s.cycles;
}
