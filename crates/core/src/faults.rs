//! Deterministic fault injection and policy-driven recovery.
//!
//! The paper's premise is that dynamic compilation is a *transparent*
//! optimization: a region that cannot be stitched must still compute the
//! same answer through some slower path. This module makes that property
//! testable. A [`FaultPlan`] arms named [`FaultPoint`]s threaded through
//! every fallible layer of the runtime — the stitcher, the shared cache,
//! the tiered worker pool, and set-up code itself — and a seeded
//! [`SplitMix64`] decides, deterministically, when each armed point
//! fires. Because every decision is driven by simulated state (region
//! numbers, fire counts, a fixed seed) and never by host time or
//! scheduling, a faulted run is exactly repeatable: same plan, same
//! seed, same fires, same recovery, same checksums.
//!
//! Recovery is governed by a [`RecoveryPolicy`]:
//!
//! * **capped retry** — a failed stitch or install is retried up to
//!   [`RecoveryPolicy::max_retries`] times, charging a deterministic
//!   virtual-cycle backoff per attempt;
//! * **per-region quarantine** — after
//!   [`RecoveryPolicy::quarantine_after`] failures a region stops
//!   retrying the optimized path: artifacts with a static fallback copy
//!   serve it permanently, others degrade to the interpretive stitch
//!   path with injection suppressed (the degraded path is trusted —
//!   injected faults model *optimized-path* failures);
//! * **degradation ladder** — under a configurable stitched-code byte
//!   budget ([`RecoveryPolicy::code_budget_bytes`]) the session sheds
//!   work in steps: at 3/4 budget copy-and-patch plans are disabled
//!   (interpretive stitching), at full budget regions with a fallback
//!   copy stop installing new code entirely.
//!
//! Every failure is recorded in a bounded ring surfaced through
//! [`crate::Session::health`], and every injection, retry, quarantine
//! and degradation step is a typed trace event. With no plan armed the
//! framework costs nothing: no allocation, no cycles, no events — the
//! default-mode benchmark tables are byte-identical.

use dyncomp_ir::prng::SplitMix64;

/// A named place in the runtime where a fault can be injected. Each
/// point models a distinct real-world failure in the layer it lives in.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultPoint {
    /// The stitcher reports a malformed template (`BadTemplate`).
    StitchBadTemplate,
    /// Installing stitched code finds the code arena exhausted; the
    /// install is retried after a backoff (the simulated arena grows).
    CodeArenaExhausted,
    /// A bit flips in stitched code before the pre-install verifier
    /// runs, exercising the verifier end-to-end: the corrupt instance is
    /// rejected and a clean re-stitch recovers.
    CodeCorruption,
    /// Installing a shared-cache hit fails; the session degrades to its
    /// own set-up + stitch path.
    SharedCacheInstall,
    /// A shared-cache shard is poisoned: the probe is abandoned and
    /// treated as a miss.
    SharedCachePoisonedShard,
    /// A background stitch job panics inside the worker (the
    /// `catch_unwind` hardening path; the region is pinned to its
    /// fallback copy).
    WorkerPanic,
    /// A background job's virtual completion time slips by
    /// [`Injection::magnitude`] cycles (default
    /// [`Injection::DEFAULT_SLOW_CYCLES`]): the session keeps running
    /// the fallback copy longer.
    WorkerSlow,
    /// Set-up code traps mid-run (modeled as an instruction budget of
    /// [`Injection::magnitude`], default
    /// [`Injection::DEFAULT_TRAP_FUEL`], on a probe fork); the attempt's
    /// cycles are charged and set-up is retried.
    SetupVmTrap,
    /// The native backend's executable arena cannot be mapped (mmap /
    /// mprotect failure): the install is declined, a
    /// [`FailureKind::BackendUnavailable`] record is logged once, and
    /// the region keeps running on the VM backend.
    NativeArenaExhausted,
    /// A chain request after a native install is declined (modeling an
    /// mprotect refusal mid-back-patch): the instance stays unchained
    /// and every entry keeps bouncing through the VM dispatch loop,
    /// exercising the severed-link/unchained path on any host.
    NativeChainPatch,
}

impl FaultPoint {
    /// Every fault point, in a stable order (the `fault_sweep` bench
    /// enumerates these).
    pub const ALL: [FaultPoint; 10] = [
        FaultPoint::StitchBadTemplate,
        FaultPoint::CodeArenaExhausted,
        FaultPoint::CodeCorruption,
        FaultPoint::SharedCacheInstall,
        FaultPoint::SharedCachePoisonedShard,
        FaultPoint::WorkerPanic,
        FaultPoint::WorkerSlow,
        FaultPoint::SetupVmTrap,
        FaultPoint::NativeArenaExhausted,
        FaultPoint::NativeChainPatch,
    ];

    /// Stable name (trace events, `BENCH_fault_sweep.json` rows).
    pub fn name(self) -> &'static str {
        match self {
            FaultPoint::StitchBadTemplate => "StitchBadTemplate",
            FaultPoint::CodeArenaExhausted => "CodeArenaExhausted",
            FaultPoint::CodeCorruption => "CodeCorruption",
            FaultPoint::SharedCacheInstall => "SharedCacheInstall",
            FaultPoint::SharedCachePoisonedShard => "SharedCachePoisonedShard",
            FaultPoint::WorkerPanic => "WorkerPanic",
            FaultPoint::WorkerSlow => "WorkerSlow",
            FaultPoint::SetupVmTrap => "SetupVmTrap",
            FaultPoint::NativeArenaExhausted => "NativeArenaExhausted",
            FaultPoint::NativeChainPatch => "NativeChainPatch",
        }
    }
}

/// One armed injection: a fault point, an optional region filter, a fire
/// budget and an optional probability.
#[derive(Clone, Debug)]
pub struct Injection {
    /// Where to inject.
    pub point: FaultPoint,
    /// Only fire for this region (`None`: any region).
    pub region: Option<u16>,
    /// Stop firing after this many fires.
    pub max_fires: u32,
    /// Fire with probability `num/den` per opportunity, drawn from the
    /// plan's seeded PRNG (`None`: fire at every opportunity until
    /// `max_fires` is exhausted). `Some((0, 1))` arms the point without
    /// ever firing — the zero-cost-when-idle proof configuration.
    pub chance: Option<(u64, u64)>,
    /// Point-specific magnitude; `0` selects the point's default
    /// ([`Injection::DEFAULT_SLOW_CYCLES`] for [`FaultPoint::WorkerSlow`],
    /// [`Injection::DEFAULT_TRAP_FUEL`] for [`FaultPoint::SetupVmTrap`];
    /// other points ignore it).
    pub magnitude: u64,
}

impl Injection {
    /// Default virtual-cycle delay for [`FaultPoint::WorkerSlow`].
    pub const DEFAULT_SLOW_CYCLES: u64 = 50_000;
    /// Default probe-fork instruction budget for
    /// [`FaultPoint::SetupVmTrap`].
    pub const DEFAULT_TRAP_FUEL: u64 = 6;

    /// An injection at `point` firing once, for any region,
    /// unconditionally, with the default magnitude.
    pub fn new(point: FaultPoint) -> Self {
        Injection {
            point,
            region: None,
            max_fires: 1,
            chance: None,
            magnitude: 0,
        }
    }

    /// Same, firing up to `max_fires` times.
    pub fn times(point: FaultPoint, max_fires: u32) -> Self {
        Injection {
            max_fires,
            ..Injection::new(point)
        }
    }

    /// The effective magnitude for this injection's point.
    fn effective_magnitude(&self) -> u64 {
        if self.magnitude != 0 {
            return self.magnitude;
        }
        match self.point {
            FaultPoint::WorkerSlow => Injection::DEFAULT_SLOW_CYCLES,
            FaultPoint::SetupVmTrap => Injection::DEFAULT_TRAP_FUEL,
            _ => 0,
        }
    }
}

/// A deterministic fault plan: a PRNG seed plus the armed injections.
/// Installed via [`crate::EngineOptions::faults`]; `None` there disables
/// injection entirely (and is the default — the paper tables never see
/// this machinery).
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    /// Seed for the plan's [`SplitMix64`] (probability draws and
    /// corruption positions).
    pub seed: u64,
    /// The armed injections, consulted in order at each opportunity.
    pub injections: Vec<Injection>,
}

impl FaultPlan {
    /// A plan with one injection: `point` fires `max_fires` times, any
    /// region, unconditionally.
    pub fn single(point: FaultPoint, max_fires: u32) -> Self {
        FaultPlan {
            seed: 0,
            injections: vec![Injection::times(point, max_fires)],
        }
    }

    /// A seeded chaos plan arming every fault point at probability 1/8
    /// with a small fire budget each (the `dyncc --fault-seed` plan).
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed,
            injections: FaultPoint::ALL
                .iter()
                .map(|&p| Injection {
                    chance: Some((1, 8)),
                    ..Injection::times(p, 4)
                })
                .collect(),
        }
    }

    /// A plan arming every fault point with zero probability: the full
    /// injection machinery is consulted at every opportunity but never
    /// fires. Used to prove the armed-but-idle configuration changes no
    /// simulated result.
    pub fn idle() -> Self {
        FaultPlan {
            seed: 0,
            injections: FaultPoint::ALL
                .iter()
                .map(|&p| Injection {
                    chance: Some((0, 1)),
                    max_fires: u32::MAX,
                    ..Injection::new(p)
                })
                .collect(),
        }
    }
}

/// Live injection state owned by a session: the plan, per-injection fire
/// counts, the seeded PRNG, and a log of fires not yet folded into the
/// session's counters/trace.
#[derive(Debug)]
pub(crate) struct FaultState {
    injections: Vec<Injection>,
    fired: Vec<u32>,
    rng: SplitMix64,
    /// Fires recorded since the session last drained them (the tiered
    /// state fires injections while the session is borrowed elsewhere).
    pending: Vec<(FaultPoint, u16)>,
}

impl FaultState {
    pub(crate) fn new(plan: &FaultPlan) -> Self {
        FaultState {
            fired: vec![0; plan.injections.len()],
            injections: plan.injections.clone(),
            rng: SplitMix64::new(plan.seed),
            pending: Vec::new(),
        }
    }

    /// Consult the plan at an opportunity for `point` in `region`.
    /// Returns the injection's effective magnitude when it fires. Every
    /// fire is appended to the pending log for the session to fold into
    /// its counters and trace.
    pub(crate) fn fire(&mut self, point: FaultPoint, region: u16) -> Option<u64> {
        for (i, inj) in self.injections.iter().enumerate() {
            if inj.point != point || self.fired[i] >= inj.max_fires {
                continue;
            }
            if let Some(r) = inj.region {
                if r != region {
                    continue;
                }
            }
            let roll = match inj.chance {
                None => true,
                Some((num, den)) => self.rng.chance(num, den.max(1)),
            };
            if roll {
                self.fired[i] += 1;
                self.pending.push((point, region));
                return Some(inj.effective_magnitude());
            }
        }
        None
    }

    /// A deterministic draw below `n` (corruption word positions).
    pub(crate) fn draw_below(&mut self, n: u64) -> u64 {
        self.rng.below(n)
    }

    /// Drain fires not yet folded into session counters.
    pub(crate) fn drain_pending(&mut self) -> Vec<(FaultPoint, u16)> {
        std::mem::take(&mut self.pending)
    }
}

/// How the session responds to failures — injected or genuine. Always
/// present on [`crate::EngineOptions`]; with no failures and no byte
/// budget it costs nothing (backoff cycles are only charged when a
/// retry actually happens).
#[derive(Clone, Debug)]
pub struct RecoveryPolicy {
    /// Retries per failed operation (stitch, install, set-up) before the
    /// operation gives up.
    pub max_retries: u32,
    /// Virtual-cycle backoff charged per retry, scaled linearly by the
    /// attempt number (attempt `n` charges `n * retry_backoff_cycles`).
    pub retry_backoff_cycles: u64,
    /// Failures recorded against a region before it is quarantined:
    /// pinned to its static fallback copy when the artifact has one,
    /// otherwise degraded to interpretive stitching with injection
    /// suppressed.
    pub quarantine_after: u32,
    /// Stitched-code byte budget for this session (`None`: unbounded,
    /// the paper's model). At 3/4 of the budget, copy-and-patch plans
    /// are disabled (interpretive stitching); at the full budget,
    /// regions with a fallback copy stop installing new code.
    pub code_budget_bytes: Option<u64>,
    /// Capacity of the bounded failure ring behind
    /// [`crate::Session::health`]; older records are dropped (counted).
    pub failure_log: usize,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            max_retries: 2,
            retry_backoff_cycles: 200,
            quarantine_after: 4,
            code_budget_bytes: None,
            failure_log: 64,
        }
    }
}

/// What kind of operation failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailureKind {
    /// The stitcher failed.
    Stitch,
    /// The pre-install verifier rejected an instance.
    Verify,
    /// Installing stitched code failed (arena exhaustion).
    Install,
    /// A shared-cache probe or install failed.
    SharedCache,
    /// Set-up code trapped.
    Setup,
    /// A background stitch job failed.
    Background {
        /// Whether the worker panicked (vs. an ordinary error).
        panicked: bool,
    },
    /// The native backend declined (unsupported host, or the W^X arena
    /// could not be mapped); the session continues on the VM backend.
    BackendUnavailable,
}

impl FailureKind {
    /// Stable name for rendering.
    pub fn name(self) -> &'static str {
        match self {
            FailureKind::Stitch => "stitch",
            FailureKind::Verify => "verify",
            FailureKind::Install => "install",
            FailureKind::SharedCache => "shared-cache",
            FailureKind::Setup => "setup",
            FailureKind::Background { panicked: true } => "background-panic",
            FailureKind::Background { panicked: false } => "background-error",
            FailureKind::BackendUnavailable => "backend-unavailable",
        }
    }
}

/// One recorded failure.
#[derive(Clone, Debug)]
pub struct FailureRecord {
    /// Session cycle stamp when the failure was recorded.
    pub at: u64,
    /// The region involved.
    pub region: u16,
    /// What failed.
    pub kind: FailureKind,
    /// Whether the failure was injected by the fault plan (vs. genuine).
    pub injected: bool,
    /// Human-readable diagnostic.
    pub message: String,
}

/// A snapshot of the session's robustness state
/// ([`crate::Session::health`]).
#[derive(Clone, Debug)]
pub struct HealthReport {
    /// The retained failure records, oldest first (bounded by
    /// [`RecoveryPolicy::failure_log`]).
    pub failures: Vec<FailureRecord>,
    /// Total failures ever recorded (including dropped records).
    pub total_failures: u64,
    /// Records dropped from the ring to respect its capacity.
    pub dropped: u64,
    /// Regions currently quarantined, ascending.
    pub quarantined: Vec<u16>,
    /// Faults injected by the plan so far.
    pub faults_injected: u64,
    /// Retries performed so far.
    pub retries: u64,
    /// Stitched-code bytes installed so far (all install paths).
    pub code_bytes_installed: u64,
    /// The configured byte budget, if any.
    pub code_budget_bytes: Option<u64>,
    /// Current degradation-ladder level: 0 = full stitching, 1 = plans
    /// disabled (interpretive stitching), 2 = fallback only (regions
    /// with a static fallback copy stop installing new code).
    pub degradation_level: u8,
}

/// Mutable recovery bookkeeping owned by a session.
#[derive(Debug)]
pub(crate) struct RecoveryState {
    policy: RecoveryPolicy,
    ring: std::collections::VecDeque<FailureRecord>,
    dropped: u64,
    total: u64,
    per_region: Vec<u32>,
    quarantined: Vec<bool>,
    bytes_installed: u64,
    retries: u64,
    faults: u64,
}

impl RecoveryState {
    pub(crate) fn new(policy: RecoveryPolicy, regions: usize) -> Self {
        RecoveryState {
            policy,
            ring: std::collections::VecDeque::new(),
            dropped: 0,
            total: 0,
            per_region: vec![0; regions],
            quarantined: vec![false; regions],
            bytes_installed: 0,
            retries: 0,
            faults: 0,
        }
    }

    pub(crate) fn policy(&self) -> &RecoveryPolicy {
        &self.policy
    }

    /// Record a failure into the bounded ring, bump the region's failure
    /// count, and quarantine the region once it crosses the threshold.
    /// Returns `true` when this record newly quarantined the region.
    pub(crate) fn record(&mut self, rec: FailureRecord) -> bool {
        let region = rec.region as usize;
        self.total += 1;
        if self.ring.len() >= self.policy.failure_log.max(1) {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(rec);
        self.per_region[region] += 1;
        if !self.quarantined[region] && self.per_region[region] >= self.policy.quarantine_after {
            self.quarantined[region] = true;
            return true;
        }
        false
    }

    pub(crate) fn is_quarantined(&self, region: u16) -> bool {
        self.quarantined[region as usize]
    }

    pub(crate) fn note_retry(&mut self) {
        self.retries += 1;
    }

    pub(crate) fn note_fault(&mut self) {
        self.faults += 1;
    }

    /// Account installed code bytes against the budget. Returns the new
    /// degradation level when this installation crossed a ladder step.
    pub(crate) fn add_bytes(&mut self, bytes: u64) -> Option<u8> {
        let before = self.level();
        self.bytes_installed += bytes;
        let after = self.level();
        (after > before).then_some(after)
    }

    /// Current degradation-ladder level (see
    /// [`HealthReport::degradation_level`]).
    pub(crate) fn level(&self) -> u8 {
        let Some(budget) = self.policy.code_budget_bytes else {
            return 0;
        };
        if self.bytes_installed >= budget {
            2
        } else if self.bytes_installed.saturating_mul(4) >= budget.saturating_mul(3) {
            1
        } else {
            0
        }
    }

    /// Iterate the retained failure records, oldest first.
    pub(crate) fn failures(&self) -> impl DoubleEndedIterator<Item = &FailureRecord> {
        self.ring.iter()
    }

    pub(crate) fn report(&self) -> HealthReport {
        HealthReport {
            failures: self.ring.iter().cloned().collect(),
            total_failures: self.total,
            dropped: self.dropped,
            quarantined: (0..self.quarantined.len())
                .filter(|&i| self.quarantined[i])
                .map(|i| i as u16)
                .collect(),
            faults_injected: self.faults,
            retries: self.retries,
            code_bytes_installed: self.bytes_installed,
            code_budget_bytes: self.policy.code_budget_bytes,
            degradation_level: self.level(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_fires_deterministically_and_respects_budget() {
        let plan = FaultPlan::single(FaultPoint::StitchBadTemplate, 2);
        let mut a = FaultState::new(&plan);
        let mut b = FaultState::new(&plan);
        for _ in 0..5 {
            assert_eq!(
                a.fire(FaultPoint::StitchBadTemplate, 0),
                b.fire(FaultPoint::StitchBadTemplate, 0)
            );
        }
        assert_eq!(a.drain_pending().len(), 2, "max_fires caps the fires");
        assert!(a.fire(FaultPoint::WorkerPanic, 0).is_none(), "unarmed");
    }

    #[test]
    fn region_filter_and_magnitude_default() {
        let plan = FaultPlan {
            seed: 7,
            injections: vec![Injection {
                region: Some(1),
                ..Injection::new(FaultPoint::WorkerSlow)
            }],
        };
        let mut f = FaultState::new(&plan);
        assert!(f.fire(FaultPoint::WorkerSlow, 0).is_none());
        assert_eq!(
            f.fire(FaultPoint::WorkerSlow, 1),
            Some(Injection::DEFAULT_SLOW_CYCLES)
        );
    }

    #[test]
    fn idle_plan_never_fires() {
        let mut f = FaultState::new(&FaultPlan::idle());
        for p in FaultPoint::ALL {
            for r in 0..4 {
                assert!(f.fire(p, r).is_none());
            }
        }
        assert!(f.drain_pending().is_empty());
    }

    #[test]
    fn seeded_plans_are_reproducible() {
        let plan = FaultPlan::seeded(42);
        let mut a = FaultState::new(&plan);
        let mut b = FaultState::new(&plan);
        let seq_a: Vec<_> = (0..64)
            .map(|i| a.fire(FaultPoint::ALL[i % 8], (i % 3) as u16))
            .collect();
        let seq_b: Vec<_> = (0..64)
            .map(|i| b.fire(FaultPoint::ALL[i % 8], (i % 3) as u16))
            .collect();
        assert_eq!(seq_a, seq_b);
    }

    #[test]
    fn recovery_ring_is_bounded_and_quarantines() {
        let mut r = RecoveryState::new(
            RecoveryPolicy {
                failure_log: 2,
                quarantine_after: 3,
                ..RecoveryPolicy::default()
            },
            2,
        );
        let rec = |region| FailureRecord {
            at: 0,
            region,
            kind: FailureKind::Stitch,
            injected: true,
            message: String::new(),
        };
        assert!(!r.record(rec(0)));
        assert!(!r.record(rec(0)));
        assert!(r.record(rec(0)), "third failure quarantines");
        assert!(!r.record(rec(0)), "only the crossing reports true");
        assert!(r.is_quarantined(0));
        assert!(!r.is_quarantined(1));
        let h = r.report();
        assert_eq!(h.failures.len(), 2);
        assert_eq!(h.total_failures, 4);
        assert_eq!(h.dropped, 2);
        assert_eq!(h.quarantined, vec![0]);
    }

    #[test]
    fn degradation_ladder_levels() {
        let mut r = RecoveryState::new(
            RecoveryPolicy {
                code_budget_bytes: Some(100),
                ..RecoveryPolicy::default()
            },
            1,
        );
        assert_eq!(r.level(), 0);
        assert_eq!(r.add_bytes(74), None);
        assert_eq!(r.level(), 0);
        assert_eq!(r.add_bytes(1), Some(1), "3/4 budget: plans off");
        assert_eq!(r.add_bytes(10), None);
        assert_eq!(r.add_bytes(15), Some(2), "full budget: fallback only");
        assert_eq!(r.add_bytes(1000), None, "no re-report past the top");
    }

    #[test]
    fn no_budget_means_level_zero_forever() {
        let mut r = RecoveryState::new(RecoveryPolicy::default(), 1);
        assert_eq!(r.add_bytes(u64::MAX / 2), None);
        assert_eq!(r.level(), 0);
    }
}
