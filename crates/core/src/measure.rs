//! Measurement harness for the paper's §5 methodology.
//!
//! Compiles the same annotated source twice — once honoring annotations
//! (dynamic compilation) and once ignoring them (the statically compiled,
//! fully optimized baseline) — runs both on identical inputs, and reports
//! the quantities of the paper's Table 2: asymptotic speedup, dynamic
//! compilation overhead split into set-up and stitcher cycles, breakeven
//! point, and cycles per stitched instruction. The per-kernel optimization
//! profile of Table 3 comes from the specializer's and stitcher's
//! counters.

use crate::trace::{RegionProfile, TraceOptions};
use crate::{Compiler, EngineOptions, Error, Program, RegionReport, Session};
use dyncomp_specialize::SpecStats;
use dyncomp_stitcher::StitchStats;
use std::sync::Arc;

/// How to run one kernel for measurement.
///
/// The closures are `Send + Sync` so one setup can drive many concurrent
/// sessions over a shared `Arc<Program>` (the determinism suite and the
/// `concurrent_throughput` bench).
pub struct KernelSetup<'a> {
    /// Annotated MiniC source (compiled both ways).
    pub src: &'a str,
    /// Function to invoke.
    pub func: &'a str,
    /// Executions to measure.
    pub iterations: u64,
    /// Build input data in VM memory; returns values (typically addresses)
    /// that [`KernelSetup::args`] may use.
    #[allow(clippy::type_complexity)]
    pub prepare: Box<dyn Fn(&mut Session) -> Vec<u64> + Send + Sync + 'a>,
    /// Arguments for invocation `i`, given the prepared values.
    #[allow(clippy::type_complexity)]
    pub args: Box<dyn Fn(u64, &[u64]) -> Vec<u64> + Send + Sync + 'a>,
}

/// Everything Table 2 needs for one kernel/configuration row.
#[derive(Clone, Debug)]
pub struct KernelMeasurement {
    /// Executions measured.
    pub iterations: u64,
    /// Statically compiled cycles per execution.
    pub static_cycles: f64,
    /// Dynamically compiled cycles per execution (set-up excluded).
    pub dynamic_cycles: f64,
    /// Asymptotic speedup (static / dynamic).
    pub speedup: f64,
    /// Set-up code cycles (VM-measured, first execution only).
    pub setup_cycles: u64,
    /// Stitcher cycles (cost-model accounted).
    pub stitch_cycles: u64,
    /// Breakeven point: least n where n·static ≥ overhead + n·dynamic
    /// (`None` when the dynamic version is never profitable).
    pub breakeven: Option<u64>,
    /// Instructions the stitcher emitted.
    pub instructions_stitched: u32,
    /// Total overhead cycles per stitched instruction.
    pub cycles_per_stitched_instruction: f64,
    /// Static-side planned-optimization counters (summed over regions).
    pub spec: SpecStats,
    /// Run-time stitcher counters (summed over regions).
    pub stitch: StitchStats,
    /// Sum of the results of every invocation (both versions must agree —
    /// checked by the harness).
    pub checksum: u64,
}

impl KernelMeasurement {
    /// The Table 3 row: which optimizations were applied dynamically.
    pub fn optimizations(&self) -> OptProfile {
        OptProfile {
            constant_folding: self.spec.const_insts_eliminated > 0,
            static_branch_elimination: self.stitch.const_branches_resolved > 0,
            load_elimination: self.spec.loads_eliminated > 0,
            dead_code_elimination: self.stitch.blocks_skipped > 0,
            complete_loop_unrolling: self.stitch.loop_iterations > 0,
            strength_reduction: self.stitch.strength_reductions > 0,
        }
    }
}

/// Which of the paper's Table 3 optimization categories fired.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OptProfile {
    /// Run-time constant propagation and folding planned into set-up code.
    pub constant_folding: bool,
    /// Constant branches removed by the stitcher.
    pub static_branch_elimination: bool,
    /// Loads of run-time constants eliminated.
    pub load_elimination: bool,
    /// Unreachable template code skipped.
    pub dead_code_elimination: bool,
    /// Loops completely unrolled.
    pub complete_loop_unrolling: bool,
    /// Value-based peephole strength reduction.
    pub strength_reduction: bool,
}

impl OptProfile {
    /// Render as the paper's check-mark row.
    pub fn checkmarks(&self) -> [bool; 6] {
        [
            self.constant_folding,
            self.static_branch_elimination,
            self.load_elimination,
            self.dead_code_elimination,
            self.complete_loop_unrolling,
            self.strength_reduction,
        ]
    }
}

/// Run one kernel both ways and measure (default engine options).
///
/// # Errors
/// Compilation or execution failure in either version.
///
/// # Panics
/// Panics when the static and dynamic versions disagree on any result —
/// a mismatch is a correctness bug, not an environmental error.
pub fn measure_kernel(setup: &KernelSetup<'_>) -> Result<KernelMeasurement, Error> {
    measure_kernel_with(setup, crate::EngineOptions::default())
}

/// Like [`measure_kernel`], with explicit engine options for the dynamic
/// version (ablations: peephole off, fused cost model, register actions).
///
/// # Errors
/// Compilation or execution failure in either version.
///
/// # Panics
/// Panics when the static and dynamic versions disagree on any result.
pub fn measure_kernel_with(
    setup: &KernelSetup<'_>,
    engine_options: crate::EngineOptions,
) -> Result<KernelMeasurement, Error> {
    measure_kernel_full(setup, &Compiler::new(), engine_options)
}

/// The fully general entry: explicit compiler (analysis ablations) and
/// engine options for the dynamic version.
///
/// # Errors
/// Compilation or execution failure in either version.
///
/// # Panics
/// Panics when the static and dynamic versions disagree on any result.
pub fn measure_kernel_full(
    setup: &KernelSetup<'_>,
    dynamic_compiler: &Compiler,
    engine_options: crate::EngineOptions,
) -> Result<KernelMeasurement, Error> {
    // ---- static baseline ----
    let static_prog = Arc::new(Compiler::static_baseline().compile(setup.src)?);
    let static_run = run_session(&static_prog, setup, EngineOptions::default())?;

    // ---- dynamic version ----
    let dyn_prog = Arc::new(dynamic_compiler.compile(setup.src)?);
    let dyn_run = run_session(&dyn_prog, setup, engine_options)?;
    let (static_total, static_checksum) = (static_run.call_cycles, static_run.checksum);
    let (dyn_result, dyn_checksum, reports) =
        (dyn_run.call_cycles, dyn_run.checksum, dyn_run.reports);

    assert_eq!(
        static_checksum, dyn_checksum,
        "static and dynamic versions disagree for {}",
        setup.func
    );

    let setup_cycles: u64 = reports.iter().map(|r| r.setup_cycles).sum();
    let stitch_cycles: u64 = reports.iter().map(|r| r.stitch_cycles).sum();
    let instructions_stitched: u32 = reports.iter().map(|r| r.instructions_stitched).sum();
    let mut stitch = StitchStats::default();
    for r in &reports {
        let s = r.stitch_stats;
        stitch.instructions_stitched += s.instructions_stitched;
        stitch.words_emitted += s.words_emitted;
        stitch.holes_inline += s.holes_inline;
        stitch.holes_big += s.holes_big;
        stitch.const_branches_resolved += s.const_branches_resolved;
        stitch.blocks_skipped += s.blocks_skipped;
        stitch.loop_iterations += s.loop_iterations;
        stitch.strength_reductions += s.strength_reductions;
        stitch.regaction_loads_removed += s.regaction_loads_removed;
        stitch.regaction_stores_rewritten += s.regaction_stores_rewritten;
        stitch.regaction_promoted += s.regaction_promoted;
        stitch.plan_hits += s.plan_hits;
        stitch.plan_misses += s.plan_misses;
        stitch.cycles += s.cycles;
    }
    let mut spec = SpecStats::default();
    for (_, s) in &dyn_prog.spec_stats {
        spec.const_insts_eliminated += s.const_insts_eliminated;
        spec.loads_eliminated += s.loads_eliminated;
        spec.const_branches += s.const_branches;
        spec.unrolled_loops += s.unrolled_loops;
        spec.holes += s.holes;
    }

    let n = setup.iterations.max(1) as f64;
    let static_cycles = static_total as f64 / n;
    // Exclude one-time set-up from the asymptotic dynamic cost.
    let dynamic_cycles = (dyn_result.saturating_sub(setup_cycles)) as f64 / n;
    let speedup = if dynamic_cycles > 0.0 {
        static_cycles / dynamic_cycles
    } else {
        f64::NAN
    };
    let overhead = setup_cycles + stitch_cycles;
    let breakeven = if static_cycles > dynamic_cycles {
        Some((overhead as f64 / (static_cycles - dynamic_cycles)).ceil() as u64)
    } else {
        None
    };
    let cycles_per_stitched_instruction = if instructions_stitched > 0 {
        overhead as f64 / f64::from(instructions_stitched)
    } else {
        0.0
    };

    Ok(KernelMeasurement {
        iterations: setup.iterations,
        static_cycles,
        dynamic_cycles,
        speedup,
        setup_cycles,
        stitch_cycles,
        breakeven,
        instructions_stitched,
        cycles_per_stitched_instruction,
        spec,
        stitch,
        checksum: dyn_checksum,
    })
}

/// What one session produced running a kernel workload: everything the
/// determinism suite compares bit-for-bit across threads.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SessionOutcome {
    /// FNV-style checksum over every invocation's result, in order.
    pub checksum: u64,
    /// Simulated cycles spent inside the measured calls.
    pub call_cycles: u64,
    /// The session's final VM cycle counter (calls + data preparation).
    pub total_cycles: u64,
    /// Per-region measurement reports.
    pub reports: Vec<RegionReport>,
}

/// A [`run_session`] run with the per-invocation cycle trace kept: what
/// the warm-up/latency analyses consume (time to first result, time to
/// first fast execution, empirical breakeven).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SessionTrace {
    /// FNV-style checksum over every invocation's result, in order.
    pub checksum: u64,
    /// Simulated cycles of each invocation, in call order.
    pub per_call_cycles: Vec<u64>,
    /// Per-region measurement reports.
    pub reports: Vec<RegionReport>,
}

/// Like [`run_session`], but recording each invocation's cycle cost
/// individually.
///
/// Each invocation is charged the stitcher cycles its traps incurred:
/// synchronous stitching happens on the critical path, so the trace
/// reflects Table 2's overhead accounting (set-up runs on the VM clock
/// already; stitcher cycles are cost-model accounted). Background
/// stitches in tiered mode spend their cycles on worker clocks and are
/// correctly absent from the trace.
///
/// # Errors
/// Execution failure (VM fault, stitch failure, unknown function).
pub fn run_session_trace(
    program: &Arc<Program>,
    setup: &KernelSetup<'_>,
    options: EngineOptions,
) -> Result<SessionTrace, Error> {
    let mut session = Session::with_options(Arc::clone(program), options);
    let prepared = (setup.prepare)(&mut session);
    let mut checksum = 0u64;
    let mut per_call_cycles = Vec::with_capacity(setup.iterations as usize);
    let stitched_so_far = |s: &Session| -> u64 {
        (0..s.program().region_count())
            .map(|i| s.region_report(i).stitch_cycles)
            .sum()
    };
    for i in 0..setup.iterations {
        let args = (setup.args)(i, &prepared);
        let before = session.cycles();
        let stitch_before = stitched_so_far(&session);
        let r = session.call(setup.func, &args)?;
        let stitch_in_call = stitched_so_far(&session) - stitch_before;
        per_call_cycles.push(session.cycles() - before + stitch_in_call);
        checksum = checksum.wrapping_mul(1099511628211).wrapping_add(r);
    }
    let reports = (0..program.region_count())
        .map(|i| session.region_report(i))
        .collect();
    Ok(SessionTrace {
        checksum,
        per_call_cycles,
        reports,
    })
}

/// A [`run_session`] run with tracing forced on and the attribution
/// self-check already passed: the observability artifacts the
/// `region_profile` bench and `dyncc --trace-out` consume.
#[derive(Clone, Debug)]
pub struct ProfiledSession {
    /// The ordinary session outcome (checksums, cycles, reports).
    pub outcome: SessionOutcome,
    /// Per-region trace aggregates.
    pub profiles: Vec<RegionProfile>,
    /// The sealed event trace as JSON Lines.
    pub jsonl: String,
    /// The sealed event trace in Chrome `trace_event` JSON.
    pub chrome: String,
    /// Events dropped from the bounded ring (aggregates are exact
    /// regardless).
    pub dropped: u64,
}

/// Like [`run_session`], with [`EngineOptions::trace`] forced on (using
/// the given options' trace configuration, or the default one) and the
/// cycle-attribution self-check run before returning.
///
/// # Errors
/// Execution failure, or [`Error::Trace`] when the trace-event sums
/// disagree with the [`RegionReport`] counters.
pub fn run_session_profiled(
    program: &Arc<Program>,
    setup: &KernelSetup<'_>,
    mut options: EngineOptions,
) -> Result<ProfiledSession, Error> {
    if options.trace.is_none() {
        options.trace = Some(TraceOptions::default());
    }
    let mut session = Session::with_options(Arc::clone(program), options);
    let prepared = (setup.prepare)(&mut session);
    let mut checksum = 0u64;
    let mut total = 0u64;
    for i in 0..setup.iterations {
        let args = (setup.args)(i, &prepared);
        let before = session.cycles();
        let r = session.call(setup.func, &args)?;
        total += session.cycles() - before;
        checksum = checksum.wrapping_mul(1099511628211).wrapping_add(r);
    }
    session.trace_self_check()?;
    let reports: Vec<RegionReport> = (0..program.region_count())
        .map(|i| session.region_report(i))
        .collect();
    let jsonl = session.trace_jsonl().expect("tracing forced on");
    let chrome = session.trace_chrome().expect("tracing forced on");
    let trace = session.trace().expect("tracing forced on");
    Ok(ProfiledSession {
        outcome: SessionOutcome {
            checksum,
            call_cycles: total,
            total_cycles: session.cycles(),
            reports,
        },
        profiles: trace.profiles().to_vec(),
        dropped: trace.dropped(),
        jsonl,
        chrome,
    })
}

/// Run one complete session of a kernel workload over a shared program:
/// fresh [`Session`], prepare data, run every invocation, collect region
/// reports. This is the unit the concurrency harnesses replicate across
/// threads — with default options every replica is bit-identical.
///
/// # Errors
/// Execution failure (VM fault, stitch failure, unknown function).
pub fn run_session(
    program: &Arc<Program>,
    setup: &KernelSetup<'_>,
    options: EngineOptions,
) -> Result<SessionOutcome, Error> {
    let mut session = Session::with_options(Arc::clone(program), options);
    let prepared = (setup.prepare)(&mut session);
    let mut checksum = 0u64;
    let mut total = 0u64;
    for i in 0..setup.iterations {
        let args = (setup.args)(i, &prepared);
        let before = session.cycles();
        let r = session.call(setup.func, &args)?;
        total += session.cycles() - before;
        checksum = checksum.wrapping_mul(1099511628211).wrapping_add(r);
    }
    let reports = (0..program.region_count())
        .map(|i| session.region_report(i))
        .collect();
    Ok(SessionOutcome {
        checksum,
        call_cycles: total,
        total_cycles: session.cycles(),
        reports,
    })
}

/// One backend's half of a [`run_session_differential`] run: the usual
/// session outcome plus host wall-clock and the native-backend counters
/// (all-zero for the VM half).
#[derive(Clone, Debug)]
pub struct BackendRun {
    /// Checksums, simulated cycles, region reports.
    pub outcome: SessionOutcome,
    /// Host nanoseconds spent inside the measured calls (excludes data
    /// preparation).
    pub wall_ns: u64,
    /// Native-backend counters ([`Session::native_report`]).
    pub native: crate::NativeReport,
}

/// A VM-oracle vs native-backend differential run
/// ([`run_session_differential`]). Published only when the two halves
/// agree bit-for-bit on checksum and simulated cycles.
#[derive(Clone, Debug)]
pub struct DifferentialOutcome {
    /// The VM-backend (oracle) half.
    pub vm: BackendRun,
    /// The native-backend half.
    pub native: BackendRun,
}

/// Run a kernel workload like [`run_session`], additionally timing the
/// measured calls in host nanoseconds and collecting the session's
/// native-backend counters.
///
/// # Errors
/// Execution failure (VM fault, stitch failure, unknown function).
pub fn run_session_timed(
    program: &Arc<Program>,
    setup: &KernelSetup<'_>,
    options: EngineOptions,
) -> Result<BackendRun, Error> {
    let mut session = Session::with_options(Arc::clone(program), options);
    let prepared = (setup.prepare)(&mut session);
    let mut checksum = 0u64;
    let mut total = 0u64;
    let start = std::time::Instant::now();
    for i in 0..setup.iterations {
        let args = (setup.args)(i, &prepared);
        let before = session.cycles();
        let r = session.call(setup.func, &args)?;
        total += session.cycles() - before;
        checksum = checksum.wrapping_mul(1099511628211).wrapping_add(r);
    }
    let wall_ns = start.elapsed().as_nanos() as u64;
    let reports = (0..program.region_count())
        .map(|i| session.region_report(i))
        .collect();
    Ok(BackendRun {
        outcome: SessionOutcome {
            checksum,
            call_cycles: total,
            total_cycles: session.cycles(),
            reports,
        },
        wall_ns,
        native: session.native_report(),
    })
}

/// Run the same kernel workload on both backends — once with
/// [`EngineOptions::native`] off (the VM cycle oracle) and once with it
/// on — over identical key streams, and assert the results are
/// bit-identical: same per-invocation checksum, same simulated call and
/// total cycles. The native backend only changes *host* wall-clock;
/// every simulated quantity must match the oracle exactly.
///
/// On hosts without the native backend the second half runs on the VM
/// too (recording one `backend-unavailable` health entry), so the
/// comparison degenerates to a trivially-equal self-check and the suite
/// still passes.
///
/// # Errors
/// Execution failure from either half, or [`Error::Differential`] when
/// the halves disagree.
pub fn run_session_differential(
    program: &Arc<Program>,
    setup: &KernelSetup<'_>,
    options: EngineOptions,
) -> Result<DifferentialOutcome, Error> {
    let mut vm_opts = options.clone();
    vm_opts.native = false;
    let mut native_opts = options;
    native_opts.native = true;
    let vm = run_session_timed(program, setup, vm_opts)?;
    let native = run_session_timed(program, setup, native_opts)?;
    if vm.outcome.checksum != native.outcome.checksum {
        return Err(Error::Differential(format!(
            "checksum mismatch: vm {:#x} vs native {:#x}",
            vm.outcome.checksum, native.outcome.checksum
        )));
    }
    if vm.outcome.call_cycles != native.outcome.call_cycles
        || vm.outcome.total_cycles != native.outcome.total_cycles
    {
        return Err(Error::Differential(format!(
            "cycle mismatch: vm {}/{} vs native {}/{} (call/total)",
            vm.outcome.call_cycles,
            vm.outcome.total_cycles,
            native.outcome.call_cycles,
            native.outcome.total_cycles
        )));
    }
    Ok(DifferentialOutcome { vm, native })
}
