//! # dyncomp-codegen
//!
//! Code generation from `dyncomp-ir` to SimAlpha for the PLDI'96 dynamic
//! compilation reproduction (§3.4): instruction selection, linear-scan
//! register allocation over the *whole* function (main body, set-up code
//! and templates together, so templates are optimized in the context of
//! their enclosing procedure), and emission of machine-code templates with
//! stitcher directives as a side effect of emitting template instructions.
//!
//! The module-level driver [`compile_module`] destructs SSA, emits every
//! function, lays out globals and the float-literal pool, resolves call
//! relocations, and packages per-region [`RegionCode`] for the run-time.
//! [`install`] loads the result into a [`Vm`].

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod emit;
pub mod regalloc;

use dyncomp_ir::eval::MEM_BASE;
use dyncomp_ir::{FuncId, Module};
use dyncomp_machine::asm::AsmError;
use dyncomp_machine::template::RegionCode;
use dyncomp_machine::vm::Vm;
use dyncomp_specialize::RegionSpec;
use std::collections::HashMap;
use std::fmt;

/// Code-generation failure.
#[derive(Debug)]
pub enum CodegenError {
    /// Assembly failed (label or field range).
    Asm(AsmError),
    /// More than six call arguments.
    TooManyArgs(String),
    /// A call inside template code to a callee that transitively contains
    /// dynamic regions (re-entering the dynamic compiler mid-template
    /// would clobber the stitched code's linkage registers).
    CallInTemplate(String),
    /// Internal invariant violation.
    Internal(String),
}

impl fmt::Display for CodegenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodegenError::Asm(e) => write!(f, "assembly failed: {e}"),
            CodegenError::TooManyArgs(n) => {
                write!(f, "function `{n}`: more than 6 call arguments")
            }
            CodegenError::CallInTemplate(n) => {
                write!(
                    f,
                    "function `{n}`: call inside a dynamic region to a callee that \
                     itself contains dynamic regions"
                )
            }
            CodegenError::Internal(m) => write!(f, "internal codegen error: {m}"),
        }
    }
}

impl std::error::Error for CodegenError {}

/// One compiled function.
#[derive(Debug, Clone)]
pub struct CompiledFunc {
    /// Entry address in the module image.
    pub entry: u32,
    /// Function name.
    pub name: String,
}

/// A fully compiled module, ready to [`install`] into a VM.
#[derive(Debug)]
pub struct CompiledModule {
    /// The executable image (module base address is 0).
    pub code: Vec<u32>,
    /// Per-function entries, indexed by [`FuncId`].
    pub funcs: Vec<CompiledFunc>,
    /// Region table; `EnterRegion` immediates index into this.
    pub regions: Vec<RegionCode>,
    /// Global addresses in data memory, indexed by `GlobalId`.
    pub global_addrs: Vec<u64>,
    /// Float-literal pool contents: `(address, bits)`.
    pub float_pool: Vec<(u64, u64)>,
    /// First free data address after globals and pool (heap start).
    pub data_end: u64,
}

impl CompiledModule {
    /// Entry address of a function by name.
    pub fn entry_of(&self, name: &str) -> Option<u32> {
        self.funcs.iter().find(|f| f.name == name).map(|f| f.entry)
    }
}

/// Deterministic global layout, shared with the reference interpreter:
/// globals placed from [`MEM_BASE`], each aligned naturally.
pub fn layout_globals(m: &Module) -> (Vec<u64>, u64) {
    let mut addrs = Vec::new();
    let mut brk = MEM_BASE;
    for g in m.globals.iter() {
        let align = g.align.max(1);
        brk = (brk + align - 1) & !(align - 1);
        brk = (brk + 7) & !7; // bump allocator granularity
        addrs.push(brk);
        brk += g.size;
    }
    (addrs, (brk + 7) & !7)
}

/// Per-function flag: may this function be called from template code?
///
/// True iff the function is transitively free of dynamic regions: neither
/// it nor anything it (transitively) calls contains a region. Computed as
/// a taint fixpoint over the placed call graph.
pub fn template_callable(m: &Module) -> Vec<bool> {
    let n = m.funcs.len();
    // callers[g] = functions with a placed call to g.
    let mut callers: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut tainted = vec![false; n];
    let mut work: Vec<usize> = Vec::new();
    for (fid, f) in m.funcs.iter_enumerated() {
        if !f.regions.is_empty() {
            tainted[fid.index()] = true;
            work.push(fid.index());
        }
        for blk in f.blocks.iter() {
            for &i in &blk.insts {
                if let dyncomp_ir::InstKind::Call { callee, .. } = f.kind(i) {
                    if callee.index() < n {
                        callers[callee.index()].push(fid.index());
                    }
                }
            }
        }
    }
    while let Some(g) = work.pop() {
        for &c in &callers[g] {
            if !tainted[c] {
                tainted[c] = true;
                work.push(c);
            }
        }
    }
    tainted.iter().map(|&t| !t).collect()
}

/// Compile a module (post-specialization, still SSA) to machine code.
///
/// Destructs SSA in place. `specs` carries the [`RegionSpec`] of every
/// specialized region (may be empty for purely static modules).
///
/// # Errors
/// Returns a [`CodegenError`] on malformed input or emission failure.
pub fn compile_module(
    m: &mut Module,
    specs: &[(FuncId, RegionSpec)],
) -> Result<CompiledModule, CodegenError> {
    // Out of SSA.
    for f in m.funcs.iter_mut() {
        if f.is_ssa {
            dyncomp_ir::cfg::split_critical_edges(f);
            dyncomp_ir::out_of_ssa::destruct_ssa(f);
        }
    }

    let (global_addrs, globals_end) = layout_globals(m);
    let float_pool_addr = globals_end;
    let mut mcx = emit::ModuleCtx {
        global_addrs: global_addrs.clone(),
        float_pool: HashMap::new(),
        float_pool_addr,
    };

    // Which functions may be called from inside template code: only those
    // transitively free of dynamic regions. A tainted callee would
    // re-enter the dynamic compiler from stitched code, clobbering the
    // linkage registers the stitcher established for the current instance.
    let template_callable = template_callable(m);

    let mut code: Vec<u32> = Vec::new();
    let mut funcs = Vec::new();
    let mut regions: Vec<RegionCode> = Vec::new();
    let mut relocs: Vec<(u32, FuncId)> = Vec::new();
    // (global region index, word offset in that template, callee)
    let mut tmpl_relocs: Vec<(usize, u32, FuncId)> = Vec::new();

    let fids: Vec<FuncId> = m.funcs.ids().collect();
    for fid in fids {
        let fspecs: Vec<&RegionSpec> = specs
            .iter()
            .filter(|(f2, _)| *f2 == fid)
            .map(|(_, s)| s)
            .collect();
        let f = &m.funcs[fid];
        let emitted = emit::emit_function(
            f,
            &fspecs,
            regions.len() as u16,
            &template_callable,
            &mut mcx,
        )?;
        let base = code.len() as u32;
        let mut gidx_of = HashMap::new();
        for (rid, mut rc) in emitted.regions {
            rc.enter_pc += base;
            rc.setup_pc += base;
            if let Some(p) = rc.fallback_pc.as_mut() {
                *p += base;
            }
            for pc in rc.exit_pcs.iter_mut() {
                *pc += base;
            }
            gidx_of.insert(rid, regions.len());
            regions.push(rc);
        }
        for (w, callee) in emitted.call_relocs {
            relocs.push((base + w, callee));
        }
        for (rid, w, callee) in emitted.tmpl_relocs {
            tmpl_relocs.push((gidx_of[&rid], w, callee));
        }
        funcs.push(CompiledFunc {
            entry: base,
            name: f.name.clone(),
        });
        code.extend(emitted.words);
    }

    // Patch call relocations: the Ldiw immediate is the word after the
    // instruction word.
    for (w, callee) in relocs {
        code[w as usize + 1] = funcs[callee.index()].entry;
    }

    // Patch template-call relocations with absolute callee entries, then
    // rebuild the affected copy-and-patch plans (plans copy code words, so
    // they would otherwise embed the unpatched immediate).
    let mut patched: Vec<usize> = Vec::new();
    for (g, w, callee) in tmpl_relocs {
        regions[g].template.code[w as usize] = funcs[callee.index()].entry;
        patched.push(g);
    }
    patched.sort_unstable();
    patched.dedup();
    for g in patched {
        dyncomp_machine::template::precompile_plans(&mut regions[g].template);
    }

    let mut float_pool: Vec<(u64, u64)> = mcx
        .float_pool
        .iter()
        .map(|(&bits, &off)| (float_pool_addr + u64::from(off), bits))
        .collect();
    float_pool.sort_unstable();
    let data_end = float_pool_addr + 8 * mcx.float_pool.len() as u64;

    Ok(CompiledModule {
        code,
        funcs,
        regions,
        global_addrs,
        float_pool,
        data_end: (data_end + 7) & !7,
    })
}

/// Load a compiled module into a fresh VM: code at address 0, global
/// initializers and the float pool written into data memory, heap opened
/// after them.
///
/// # Panics
/// Panics if the VM already holds code (module addresses are absolute).
pub fn install(cm: &CompiledModule, m: &Module, vm: &mut Vm) {
    assert!(vm.code.is_empty(), "install requires a fresh VM");
    vm.append_code(&cm.code);
    for (g, &addr) in m.globals.iter().zip(cm.global_addrs.iter()) {
        for (i, &byte) in g.init.iter().enumerate().take(g.size as usize) {
            vm.mem
                .write(addr + i as u64, dyncomp_ir::MemSize::B1, u64::from(byte))
                .expect("global initializer fits in memory");
        }
    }
    for &(addr, bits) in &cm.float_pool {
        vm.mem
            .write_u64(addr, bits)
            .expect("float pool fits in memory");
    }
    vm.mem.set_brk(cm.data_end);
}

#[cfg(test)]
mod tests;
