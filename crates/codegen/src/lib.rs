//! # dyncomp-codegen
//!
//! Code generation from `dyncomp-ir` to SimAlpha for the PLDI'96 dynamic
//! compilation reproduction (§3.4): instruction selection, linear-scan
//! register allocation over the *whole* function (main body, set-up code
//! and templates together, so templates are optimized in the context of
//! their enclosing procedure), and emission of machine-code templates with
//! stitcher directives as a side effect of emitting template instructions.
//!
//! The module-level driver [`compile_module`] destructs SSA, emits every
//! function, lays out globals and the float-literal pool, resolves call
//! relocations, and packages per-region [`RegionCode`] for the run-time.
//! [`install`] loads the result into a [`Vm`].

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod emit;
pub mod regalloc;

use dyncomp_ir::eval::MEM_BASE;
use dyncomp_ir::{FuncId, Module};
use dyncomp_machine::asm::AsmError;
use dyncomp_machine::template::RegionCode;
use dyncomp_machine::vm::Vm;
use dyncomp_specialize::RegionSpec;
use std::collections::HashMap;
use std::fmt;

/// Code-generation failure.
#[derive(Debug)]
pub enum CodegenError {
    /// Assembly failed (label or field range).
    Asm(AsmError),
    /// More than six call arguments.
    TooManyArgs(String),
    /// A call inside template code (not supported).
    CallInTemplate(String),
    /// Internal invariant violation.
    Internal(String),
}

impl fmt::Display for CodegenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodegenError::Asm(e) => write!(f, "assembly failed: {e}"),
            CodegenError::TooManyArgs(n) => {
                write!(f, "function `{n}`: more than 6 call arguments")
            }
            CodegenError::CallInTemplate(n) => {
                write!(
                    f,
                    "function `{n}`: calls inside dynamic regions are not supported"
                )
            }
            CodegenError::Internal(m) => write!(f, "internal codegen error: {m}"),
        }
    }
}

impl std::error::Error for CodegenError {}

/// One compiled function.
#[derive(Debug, Clone)]
pub struct CompiledFunc {
    /// Entry address in the module image.
    pub entry: u32,
    /// Function name.
    pub name: String,
}

/// A fully compiled module, ready to [`install`] into a VM.
#[derive(Debug)]
pub struct CompiledModule {
    /// The executable image (module base address is 0).
    pub code: Vec<u32>,
    /// Per-function entries, indexed by [`FuncId`].
    pub funcs: Vec<CompiledFunc>,
    /// Region table; `EnterRegion` immediates index into this.
    pub regions: Vec<RegionCode>,
    /// Global addresses in data memory, indexed by `GlobalId`.
    pub global_addrs: Vec<u64>,
    /// Float-literal pool contents: `(address, bits)`.
    pub float_pool: Vec<(u64, u64)>,
    /// First free data address after globals and pool (heap start).
    pub data_end: u64,
}

impl CompiledModule {
    /// Entry address of a function by name.
    pub fn entry_of(&self, name: &str) -> Option<u32> {
        self.funcs.iter().find(|f| f.name == name).map(|f| f.entry)
    }
}

/// Deterministic global layout, shared with the reference interpreter:
/// globals placed from [`MEM_BASE`], each aligned naturally.
pub fn layout_globals(m: &Module) -> (Vec<u64>, u64) {
    let mut addrs = Vec::new();
    let mut brk = MEM_BASE;
    for g in m.globals.iter() {
        let align = g.align.max(1);
        brk = (brk + align - 1) & !(align - 1);
        brk = (brk + 7) & !7; // bump allocator granularity
        addrs.push(brk);
        brk += g.size;
    }
    (addrs, (brk + 7) & !7)
}

/// Compile a module (post-specialization, still SSA) to machine code.
///
/// Destructs SSA in place. `specs` carries the [`RegionSpec`] of every
/// specialized region (may be empty for purely static modules).
///
/// # Errors
/// Returns a [`CodegenError`] on malformed input or emission failure.
pub fn compile_module(
    m: &mut Module,
    specs: &[(FuncId, RegionSpec)],
) -> Result<CompiledModule, CodegenError> {
    // Out of SSA.
    for f in m.funcs.iter_mut() {
        if f.is_ssa {
            dyncomp_ir::cfg::split_critical_edges(f);
            dyncomp_ir::out_of_ssa::destruct_ssa(f);
        }
    }

    let (global_addrs, globals_end) = layout_globals(m);
    let float_pool_addr = globals_end;
    let mut mcx = emit::ModuleCtx {
        global_addrs: global_addrs.clone(),
        float_pool: HashMap::new(),
        float_pool_addr,
    };

    let mut code: Vec<u32> = Vec::new();
    let mut funcs = Vec::new();
    let mut regions: Vec<RegionCode> = Vec::new();
    let mut relocs: Vec<(u32, FuncId)> = Vec::new();

    let fids: Vec<FuncId> = m.funcs.ids().collect();
    for fid in fids {
        let fspecs: Vec<&RegionSpec> = specs
            .iter()
            .filter(|(f2, _)| *f2 == fid)
            .map(|(_, s)| s)
            .collect();
        let f = &m.funcs[fid];
        let emitted = emit::emit_function(f, &fspecs, regions.len() as u16, &mut mcx)?;
        let base = code.len() as u32;
        for (_, mut rc) in emitted.regions {
            rc.enter_pc += base;
            rc.setup_pc += base;
            if let Some(p) = rc.fallback_pc.as_mut() {
                *p += base;
            }
            for pc in rc.exit_pcs.iter_mut() {
                *pc += base;
            }
            regions.push(rc);
        }
        for (w, callee) in emitted.call_relocs {
            relocs.push((base + w, callee));
        }
        funcs.push(CompiledFunc {
            entry: base,
            name: f.name.clone(),
        });
        code.extend(emitted.words);
    }

    // Patch call relocations: the Ldiw immediate is the word after the
    // instruction word.
    for (w, callee) in relocs {
        code[w as usize + 1] = funcs[callee.index()].entry;
    }

    let mut float_pool: Vec<(u64, u64)> = mcx
        .float_pool
        .iter()
        .map(|(&bits, &off)| (float_pool_addr + u64::from(off), bits))
        .collect();
    float_pool.sort_unstable();
    let data_end = float_pool_addr + 8 * mcx.float_pool.len() as u64;

    Ok(CompiledModule {
        code,
        funcs,
        regions,
        global_addrs,
        float_pool,
        data_end: (data_end + 7) & !7,
    })
}

/// Load a compiled module into a fresh VM: code at address 0, global
/// initializers and the float pool written into data memory, heap opened
/// after them.
///
/// # Panics
/// Panics if the VM already holds code (module addresses are absolute).
pub fn install(cm: &CompiledModule, m: &Module, vm: &mut Vm) {
    assert!(vm.code.is_empty(), "install requires a fresh VM");
    vm.append_code(&cm.code);
    for (g, &addr) in m.globals.iter().zip(cm.global_addrs.iter()) {
        for (i, &byte) in g.init.iter().enumerate().take(g.size as usize) {
            vm.mem
                .write(addr + i as u64, dyncomp_ir::MemSize::B1, u64::from(byte))
                .expect("global initializer fits in memory");
        }
    }
    for &(addr, bits) in &cm.float_pool {
        vm.mem
            .write_u64(addr, bits)
            .expect("float pool fits in memory");
    }
    vm.mem.set_brk(cm.data_end);
}

#[cfg(test)]
mod tests;
