//! Codegen tests: compile MiniC to SimAlpha and differential-test the VM
//! against the reference IR interpreter.

use crate::{compile_module, install, CompiledModule};
use dyncomp_frontend::{compile, LowerOptions};
use dyncomp_ir::eval::{EvalOutcome, Evaluator};
use dyncomp_ir::Module;
use dyncomp_machine::vm::{Stop, Vm};

/// Static pipeline (no dynamic regions honored) to a compiled module.
fn build(src: &str) -> (Module, CompiledModule) {
    let mut m = compile(
        src,
        &LowerOptions {
            honor_annotations: false,
            tiered_fallback: false,
        },
    )
    .expect("compiles")
    .module;
    for f in m.funcs.iter_mut() {
        dyncomp_ir::ssa::construct_ssa(f);
        dyncomp_opt::optimize(
            f,
            &dyncomp_opt::OptOptions {
                cfg_simplify: true,
                hole_scope: None,
            },
        );
        dyncomp_ir::verify::verify(f).expect("verifies");
    }
    let mut mc = m.clone();
    let cm = compile_module(&mut mc, &[]).expect("codegen");
    (m, cm)
}

fn run_vm(m: &Module, cm: &CompiledModule, func: &str, args: &[u64]) -> (u64, u64) {
    let mut vm = Vm::new(1 << 22);
    install(cm, m, &mut vm);
    let entry = cm.entry_of(func).expect("function exists");
    vm.setup_call(entry, args).unwrap();
    match vm.run() {
        Ok(Stop::Halted) => (vm.reg(0), vm.cycles),
        other => panic!("vm stopped unexpectedly: {other:?}"),
    }
}

fn run_vm_f(m: &Module, cm: &CompiledModule, func: &str, args: &[u64]) -> f64 {
    let mut vm = Vm::new(1 << 22);
    install(cm, m, &mut vm);
    let entry = cm.entry_of(func).expect("function exists");
    vm.setup_call(entry, args).unwrap();
    match vm.run() {
        Ok(Stop::Halted) => vm.freg(0),
        other => panic!("vm stopped unexpectedly: {other:?}"),
    }
}

fn run_ref(m: &Module, func: &str, args: &[u64]) -> u64 {
    let fid = m.func_by_name(func).unwrap();
    let mut ev = Evaluator::new(m);
    match ev.call(fid, args).unwrap() {
        EvalOutcome::Return(v) => v.unwrap_or(0),
    }
}

fn differential(src: &str, func: &str, argsets: &[Vec<u64>]) {
    let (m, cm) = build(src);
    for args in argsets {
        let want = run_ref(&m, func, args);
        let (got, _) = run_vm(&m, &cm, func, args);
        assert_eq!(got, want, "{func}({args:?})");
    }
}

#[test]
fn arithmetic() {
    differential(
        "int f(int a, int b) { return (a + b) * (a - b) + a / b + a % b + (a ^ b) + (a | b) + (a & b); }",
        "f",
        &[vec![17, 5], vec![100, 3], vec![0u64.wrapping_sub(9), 4]],
    );
}

#[test]
fn shifts_and_compares() {
    differential(
        "int f(int a, unsigned b) { return (a << 3) + (a >> 1) + (b >> 2) + (a < b) + (a == b) + (a >= 100); }",
        "f",
        &[vec![12, 40], vec![0u64.wrapping_sub(8), 2], vec![100, 100]],
    );
}

#[test]
fn control_flow_loops() {
    differential(
        r#"
        int collatz(int n) {
            int steps = 0;
            while (n != 1) {
                if (n % 2 == 0) n = n / 2;
                else n = 3 * n + 1;
                steps++;
            }
            return steps;
        }
        "#,
        "collatz",
        &[vec![6], vec![27], vec![1]],
    );
}

#[test]
fn switch_dispatch() {
    differential(
        r#"
        int f(int op, int a, int b) {
            switch (op) {
                case 0: return a + b;
                case 1: return a - b;
                case 2: return a * b;
                case 1000: return a;
                default: return 0 - 1;
            }
        }
        "#,
        "f",
        &[
            vec![0, 7, 3],
            vec![1, 7, 3],
            vec![2, 7, 3],
            vec![1000, 42, 0],
            vec![9, 1, 1],
        ],
    );
}

#[test]
fn function_calls_and_recursion() {
    differential(
        r#"
        int fib(int n) {
            if (n < 2) return n;
            return fib(n - 1) + fib(n - 2);
        }
        int twice(int x) { return fib(x) + fib(x); }
        "#,
        "twice",
        &[vec![10], vec![1], vec![0]],
    );
}

#[test]
fn memory_and_structs() {
    let src = r#"
        struct Pt { int x; int y; };
        int f(int n) {
            struct Pt p;
            p.x = n * 2;
            p.y = n + 5;
            return p.x * p.y;
        }
    "#;
    differential(src, "f", &[vec![4], vec![0]]);
}

#[test]
fn arrays_and_globals() {
    let src = r#"
        int tbl[6] = {1, 1, 2, 3, 5, 8};
        int f(int n) {
            int s = 0;
            int i;
            for (i = 0; i < n; i++) s += tbl[i];
            return s;
        }
        int g(int n) {
            int buf[10];
            int i;
            for (i = 0; i < 10; i++) buf[i] = i * n;
            return buf[9] - buf[1];
        }
    "#;
    differential(src, "f", &[vec![6], vec![3], vec![0]]);
    differential(src, "g", &[vec![7]]);
}

#[test]
fn floats() {
    let src = r#"
        double area(double r) { return 2.75 * r * r; }
        double hyp(double a, double b) { return sqrt(a * a + b * b); }
        int cmp(double a, double b) { return a < b; }
    "#;
    let (m, cm) = build(src);
    assert_eq!(run_vm_f(&m, &cm, "area", &[2.0f64.to_bits()]), 2.75 * 4.0);
    assert_eq!(
        run_vm_f(&m, &cm, "hyp", &[3.0f64.to_bits(), 4.0f64.to_bits()]),
        5.0
    );
    let (v, _) = run_vm(&m, &cm, "cmp", &[1.0f64.to_bits(), 2.0f64.to_bits()]);
    assert_eq!(v, 1);
}

#[test]
fn intrinsics() {
    differential(
        "int f(int a, int b) { return max(a, b) * 1000 + min(a, b) * 10 + abs(a - b); }",
        "f",
        &[vec![4, 9], vec![9, 4], vec![5, 5]],
    );
}

#[test]
fn alloc_intrinsic() {
    differential(
        r#"
        int f(int n) {
            int *p = (int*) alloc(n * 8);
            int i;
            for (i = 0; i < n; i++) p[i] = i * i;
            return p[n - 1];
        }
        "#,
        "f",
        &[vec![5], vec![1]],
    );
}

#[test]
fn large_constants() {
    differential(
        "int f(int x) { return x + 1000000 + (x * 123456789); }",
        "f",
        &[vec![1], vec![0]],
    );
    differential("unsigned f2() { return 0x12345678; }", "f2", &[vec![]]);
}

#[test]
fn register_pressure_spills() {
    // Many simultaneously live values force spilling; semantics must hold.
    let mut body = String::new();
    for i in 0..30 {
        body.push_str(&format!("int v{i} = x * {} + {i};\n", i + 2));
    }
    body.push_str("return ");
    for i in 0..30 {
        if i > 0 {
            body.push_str(" + ");
        }
        body.push_str(&format!("v{i} * v{}", 29 - i));
    }
    body.push(';');
    let src = format!("int f(int x) {{ {body} }}");
    differential(&src, "f", &[vec![3], vec![0]]);
}

#[test]
fn narrow_memory_accesses() {
    let src = r#"
        struct B { char c; short s; int w; };
        int f(int v) {
            struct B b;
            b.c = v;
            b.s = v * 3;
            b.w = v * 7;
            return b.c + b.s + b.w;
        }
    "#;
    differential(
        src,
        "f",
        &[vec![100], vec![300], vec![0u64.wrapping_sub(2)]],
    );
}

#[test]
fn short_circuit_and_ternary() {
    let src = r#"
        int g_count = 0;
        int bump() { g_count++; return 1; }
        int f(int a, int b) {
            int r = (a && bump()) + (b || bump());
            return r * 100 + g_count + (a > b ? a : b);
        }
    "#;
    differential(src, "f", &[vec![0, 0], vec![1, 0], vec![0, 1], vec![5, 9]]);
}

#[test]
fn cycle_counting_is_deterministic() {
    let src = "int f(int n) { int s = 0; int i; for (i = 0; i < n; i++) s += i; return s; }";
    let (m, cm) = build(src);
    let (r1, c1) = run_vm(&m, &cm, "f", &[100]);
    let (r2, c2) = run_vm(&m, &cm, "f", &[100]);
    assert_eq!(r1, r2);
    assert_eq!(c1, c2, "cycle counts are deterministic");
    let (_, c3) = run_vm(&m, &cm, "f", &[200]);
    assert!(c3 > c1, "more iterations cost more cycles");
}

#[test]
fn specialized_module_compiles_with_templates() {
    // Full pipeline through specialization; check the emitted template has
    // holes and directives (execution comes with the stitcher).
    let src = r#"
        int f(int k, int x) {
            dynamicRegion (k) {
                int i; int acc = 0;
                unrolled for (i = 0; i < k; i++) { acc += x * k + i; }
                return acc;
            }
        }
    "#;
    let mut m = compile(src, &LowerOptions::default()).unwrap().module;
    let mut specs = Vec::new();
    for fid in m.funcs.ids().collect::<Vec<_>>() {
        let f = &mut m.funcs[fid];
        dyncomp_ir::ssa::construct_ssa(f);
        dyncomp_opt::optimize(
            f,
            &dyncomp_opt::OptOptions {
                cfg_simplify: true,
                hole_scope: None,
            },
        );
        dyncomp_ir::cfg::split_critical_edges(f);
        f.canonicalize_region_roots();
        for rid in f.regions.ids().collect::<Vec<_>>() {
            let a = dyncomp_analysis::analyze_region(f, rid, &Default::default());
            let spec = dyncomp_specialize::specialize_region(f, rid, &a).unwrap();
            specs.push((fid, spec));
        }
    }
    let cm = compile_module(&mut m, &specs).unwrap();
    assert_eq!(cm.regions.len(), 1);
    let rc = &cm.regions[0];
    assert!(
        rc.template.blocks.len() >= 4,
        "entry, header, body, markers"
    );
    let holes: usize = rc.template.blocks.iter().map(|b| b.holes.len()).sum();
    assert!(holes >= 2, "k*x product and i are holes");
    assert!(rc.table_static_len >= 1);
    assert!(!rc.template.code.is_empty());
    // EnterRegion instruction present at enter_pc.
    let w = cm.code[rc.enter_pc as usize];
    let inst = dyncomp_machine::isa::decode(w, None).unwrap();
    assert_eq!(inst.op, dyncomp_machine::isa::Op::EnterRegion);
    assert_eq!(inst.imm, 0);
}
