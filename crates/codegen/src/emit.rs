//! Per-function instruction selection and emission.
//!
//! The whole function — main body, set-up code and templates — is register
//! allocated as one unit, so template code is "optimized in the context of
//! its enclosing procedure" (§3.3): stitched copies execute in the same
//! register state as the surrounding code. Main and set-up blocks emit
//! into the executable stream; template blocks emit into a separate
//! [`Template`] buffer with hole/branch directives, never executed in
//! place.

use crate::regalloc::{allocate, Allocation, Entity, Loc, FLT_SCRATCH, INT_SCRATCH};
use crate::CodegenError;
use dyncomp_ir::{
    BinOp, BlockId, Const, Function, IdSet, InstId, InstKind, Intrinsic, MemSize, Signedness,
    TemplateMarker, Terminator, Ty, UnOp,
};
use dyncomp_machine::asm::{Assembler, Label};
use dyncomp_machine::isa::{encode, Inst, Op, Operand, Reg, LIN, RA, SP, ZERO};
use dyncomp_machine::template::{
    BranchFixup, Hole, HoleField, LoopMarker, RegionCode, Template, TmplBlock, TmplExit, ValueLoc,
};
use dyncomp_specialize::RegionSpec;
use std::collections::HashMap;

/// Result of emitting one function.
pub struct EmittedFunc {
    /// Encoded executable words (function-local addressing).
    pub words: Vec<u32>,
    /// Call relocations: `(word index of the Ldiw immediate, callee)`.
    pub call_relocs: Vec<(u32, dyncomp_ir::FuncId)>,
    /// Template-call relocations: `(region, word index of the Ldiw
    /// immediate *within that region's template code*, callee)`. Patched
    /// by the module driver once every function entry is known; the
    /// immediate is an absolute callee entry, so stitched copies stay
    /// position-independent.
    pub tmpl_relocs: Vec<(dyncomp_ir::RegionId, u32, dyncomp_ir::FuncId)>,
    /// Region metadata with function-local addresses (rebased later).
    pub regions: Vec<(dyncomp_ir::RegionId, RegionCode)>,
    /// Float literals referenced (pool offsets were pre-assigned).
    pub float_pool_used: bool,
}

/// Per-module emission context shared across functions.
pub struct ModuleCtx {
    /// Resolved global addresses.
    pub global_addrs: Vec<u64>,
    /// Float-literal pool: bits → offset within the pool global.
    pub float_pool: HashMap<u64, u32>,
    /// Address of the float pool in data memory.
    pub float_pool_addr: u64,
}

struct Emitter<'a> {
    f: &'a Function,
    alloc: Allocation,
    asm: Assembler,
    labels: HashMap<BlockId, Label>,
    mcx: &'a mut ModuleCtx,
    call_relocs: Vec<(usize, dyncomp_ir::FuncId)>, // (inst item index, callee) — resolved later
    frame_size: u32,
    var_frame_off: HashMap<dyncomp_ir::VarId, i32>,
    spill_base: i32,
    save_area: Vec<(Reg, bool, i32)>, // (reg, is_float, offset)
    ra_off: Option<i32>,
    ret_float: bool,
    template_callable: &'a [bool],
    // Template state (set while emitting template blocks).
    tmpl: Option<TemplateBuf>,
    hole_folds: HashMap<InstId, (InstId, u8)>, // hole -> (user, operand pos)
    float_pool_used: bool,
    // Static fallback entry block per region (tiered lowering): recorded
    // when a branch conditioned on a `TierProbe` intrinsic is emitted.
    fallback_blocks: HashMap<dyncomp_ir::RegionId, BlockId>,
}

struct TemplateBuf {
    code: Vec<u32>,
    blocks: Vec<TmplBlock>,
    label_of: HashMap<BlockId, u32>,
    cur_holes: Vec<Hole>,
    cur_branches: Vec<BranchFixup>,
    call_relocs: Vec<(u32, dyncomp_ir::FuncId)>, // (word of Ldiw immediate, callee)
}

impl TemplateBuf {
    fn at(&self) -> u32 {
        self.code.len() as u32
    }
}

/// Emit one function.
///
/// `template_callable[fid]` says whether a call to that function may be
/// emitted inside template code: only callees that are transitively free
/// of dynamic regions qualify (a callee that re-enters the dynamic
/// compiler would clobber the stitched code's linkage registers).
pub fn emit_function(
    f: &Function,
    specs: &[&RegionSpec],
    region_base_index: u16,
    template_callable: &[bool],
    mcx: &mut ModuleCtx,
) -> Result<EmittedFunc, CodegenError> {
    // ---- block order: main (RPO), then per region setup + template ----
    let mut special: IdSet<BlockId> = IdSet::with_domain(f.blocks.len());
    for s in specs {
        for &b in s.setup_blocks.iter().chain(s.template_blocks.iter()) {
            special.insert(b);
        }
    }
    let rpo = dyncomp_ir::cfg::reverse_postorder(f);
    let mut order: Vec<BlockId> = rpo
        .iter()
        .copied()
        .filter(|b| !special.contains(*b))
        .collect();
    let main_count = order.len();
    for s in specs {
        order.extend(s.setup_blocks.iter().copied());
    }
    let setup_end = order.len();
    for s in specs {
        order.extend(s.template_blocks.iter().copied());
    }

    let alloc = allocate(f, &order);

    // ---- frame layout: [spills][frame vars][saves][ra] ----
    let mut off: i32 = alloc.spill_bytes as i32;
    let mut var_frame_off = HashMap::new();
    for (v, info) in f.vars.iter_enumerated() {
        if let Some(sz) = info.frame_size {
            var_frame_off.insert(v, off);
            off += ((sz + 7) & !7) as i32;
        }
    }
    let has_calls = f
        .insts
        .iter()
        .any(|i| matches!(i.kind, InstKind::Call { .. }));
    let mut save_area = Vec::new();
    for &r in &alloc.used_int_callee {
        save_area.push((r, false, off));
        off += 8;
    }
    for &r in &alloc.used_flt_callee {
        save_area.push((r, true, off));
        off += 8;
    }
    let ra_off = if has_calls {
        let o = off;
        off += 8;
        Some(o)
    } else {
        None
    };
    let frame_size = ((off + 15) & !15) as u32;

    let mut em = Emitter {
        f,
        alloc,
        asm: Assembler::new(),
        labels: HashMap::new(),
        mcx,
        call_relocs: Vec::new(),
        frame_size,
        var_frame_off,
        spill_base: 0,
        save_area,
        ra_off,
        ret_float: f.ret_ty == Ty::Float,
        template_callable,
        tmpl: None,
        hole_folds: HashMap::new(),
        float_pool_used: false,
        fallback_blocks: HashMap::new(),
    };
    em.compute_hole_folds(specs);

    for &b in &order {
        let l = em.asm.fresh_label();
        em.labels.insert(b, l);
    }

    // ---- prologue ----
    em.prologue()?;

    // ---- main + setup blocks ----
    let mut enter_pcs: HashMap<dyncomp_ir::RegionId, usize> = HashMap::new(); // item idx of ENTERREGION
    for (idx, &b) in order[..setup_end].iter().enumerate() {
        em.asm.bind(em.labels[&b]);
        for &i in &f.blocks[b].insts.clone() {
            em.inst(i)?;
        }
        let next = order[..setup_end].get(idx + 1).copied();
        em.terminator(b, next, region_base_index, specs, &mut enter_pcs)?;
    }
    let _ = main_count;

    // ---- template blocks (per region, into separate buffers) ----
    let mut templates: HashMap<dyncomp_ir::RegionId, Template> = HashMap::new();
    let mut tmpl_relocs: Vec<(dyncomp_ir::RegionId, u32, dyncomp_ir::FuncId)> = Vec::new();
    for s in specs {
        let mut buf = TemplateBuf {
            code: Vec::new(),
            blocks: Vec::new(),
            label_of: HashMap::new(),
            cur_holes: Vec::new(),
            cur_branches: Vec::new(),
            call_relocs: Vec::new(),
        };
        for (li, &b) in s.template_blocks.iter().enumerate() {
            buf.label_of.insert(b, li as u32);
        }
        em.tmpl = Some(buf);
        for &b in &s.template_blocks {
            em.template_block(b, s)?;
        }
        let buf = em.tmpl.take().expect("template buffer present");
        let entry = buf.label_of[&s.template_entry];
        for (w, callee) in buf.call_relocs {
            tmpl_relocs.push((s.region, w, callee));
        }
        let mut template = Template {
            code: buf.code,
            blocks: buf.blocks,
            entry,
        };
        // Lower value-independent blocks to copy-and-patch stitch plans.
        // Plans *copy* the code words, so the module driver re-runs this
        // after patching any template-call relocations.
        dyncomp_machine::template::precompile_plans(&mut template);
        templates.insert(s.region, template);
    }

    // ---- assemble ----
    let out = em.asm.assemble().map_err(CodegenError::Asm)?;

    // Resolve instruction-item indices to word offsets.
    let call_relocs: Vec<(u32, dyncomp_ir::FuncId)> = em
        .call_relocs
        .iter()
        .map(|&(item, fid)| (out.inst_offsets[item], fid))
        .collect();

    // ---- region metadata ----
    let mut regions = Vec::new();
    for (k, s) in specs.iter().enumerate() {
        let enter_item = enter_pcs[&s.region];
        let enter_pc = out.inst_offsets[enter_item];
        let setup_pc = out.label_offsets[&em.labels[&s.setup_entry]];
        let exit_pcs: Vec<u32> = s
            .exit_targets
            .iter()
            .map(|t| out.label_offsets[&em.labels[t]])
            .collect();
        let key_locs: Vec<ValueLoc> = f.regions[s.region]
            .key_roots
            .iter()
            .map(|&v| em.value_loc(v))
            .collect();
        let fallback_pc = em
            .fallback_blocks
            .get(&s.region)
            .map(|b| out.label_offsets[&em.labels[b]]);
        regions.push((
            s.region,
            RegionCode {
                region_index: region_base_index + k as u16,
                enter_pc,
                setup_pc,
                fallback_pc,
                template: templates.remove(&s.region).expect("template built"),
                exit_pcs,
                key_locs,
                table_static_len: s.table_static_len,
            },
        ));
    }

    Ok(EmittedFunc {
        words: out.words,
        call_relocs,
        tmpl_relocs,
        regions,
        float_pool_used: em.float_pool_used,
    })
}

impl Emitter<'_> {
    fn value_loc(&self, v: InstId) -> ValueLoc {
        match self.alloc.loc.get(&Entity::Val(v)) {
            Some(Loc::Reg(r)) => ValueLoc::Reg(*r),
            Some(Loc::FReg(r)) => ValueLoc::FReg(*r),
            Some(Loc::Frame(o)) => ValueLoc::Frame(*o + self.spill_base),
            None => ValueLoc::Reg(ZERO), // dead value
        }
    }

    /// Decide which integer holes fold into their single use's literal
    /// field (§4: "the static compiler has selected an instruction that
    /// admits the hole as an immediate operand").
    fn compute_hole_folds(&mut self, specs: &[&RegionSpec]) {
        // Count uses of each hole across the function.
        let mut use_count: HashMap<InstId, u32> = HashMap::new();
        let mut single_use: HashMap<InstId, (InstId, u8)> = HashMap::new();
        for (_, blk) in self.f.iter_blocks() {
            for &i in &blk.insts {
                for (pos, v) in self.f.kind(i).operands().into_iter().enumerate() {
                    if matches!(self.f.kind(v), InstKind::Hole { .. }) {
                        *use_count.entry(v).or_insert(0) += 1;
                        single_use.insert(v, (i, pos as u8));
                    }
                }
            }
            for v in blk.term.operands() {
                if matches!(self.f.kind(v), InstKind::Hole { .. }) {
                    *use_count.entry(v).or_insert(0) += 2; // never fold into terminators
                }
            }
        }
        let _ = specs;
        for (hole, count) in use_count {
            if count != 1 {
                continue;
            }
            let InstKind::Hole { float, .. } = self.f.kind(hole) else {
                continue;
            };
            if *float {
                continue;
            }
            let (user, pos) = single_use[&hole];
            // Foldable: integer binary op with the hole in the second
            // operand slot (the ISA's literal position).
            if let InstKind::Bin(op, _, b) = self.f.kind(user) {
                if !op.is_float() && pos == 1 && *b == hole {
                    self.hole_folds.insert(hole, (user, 1));
                }
            }
        }
    }

    fn is_folded_hole(&self, v: InstId) -> bool {
        self.hole_folds.contains_key(&v)
    }

    // ---- low-level emission (routes to template buffer when active) ----

    fn push(&mut self, i: Inst) -> usize {
        match &mut self.tmpl {
            Some(t) => {
                let (w, extra) = encode(&i).expect("template instruction encodes");
                t.code.push(w);
                if let Some(x) = extra {
                    t.code.push(x);
                }
                usize::MAX // no assembler item index in template mode
            }
            None => self.asm.push(i),
        }
    }

    fn in_template(&self) -> bool {
        self.tmpl.is_some()
    }

    // ---- operand access ----

    fn loc(&self, e: Entity) -> Option<Loc> {
        self.alloc.loc.get(&e).copied()
    }

    /// Materialize entity into an integer register (possibly a scratch).
    fn read_int(&mut self, e: Entity, scratch: usize) -> Result<Reg, CodegenError> {
        match self.loc(e) {
            Some(Loc::Reg(r)) => Ok(r),
            Some(Loc::Frame(o)) => {
                let s = INT_SCRATCH[scratch];
                self.push(Inst::mem(Op::Ldq, s, SP, (o + self.spill_base) as i16));
                Ok(s)
            }
            Some(Loc::FReg(_)) => Err(CodegenError::Internal(format!(
                "entity {e:?} is a float, read as int"
            ))),
            None => Ok(ZERO), // never-defined (dead) value
        }
    }

    /// Materialize entity into a float register.
    fn read_flt(&mut self, e: Entity, scratch: usize) -> Result<Reg, CodegenError> {
        match self.loc(e) {
            Some(Loc::FReg(r)) => Ok(r),
            Some(Loc::Frame(o)) => {
                let s = FLT_SCRATCH[scratch];
                self.push(Inst::mem(Op::Ldt, s, SP, (o + self.spill_base) as i16));
                Ok(s)
            }
            Some(Loc::Reg(_)) => Err(CodegenError::Internal(format!(
                "entity {e:?} is an int, read as float"
            ))),
            None => Ok(31),
        }
    }

    /// Register to compute an integer result into (scratch when spilled).
    fn def_int(&self, e: Entity, scratch: usize) -> Reg {
        match self.loc(e) {
            Some(Loc::Reg(r)) => r,
            Some(Loc::Frame(_)) => INT_SCRATCH[scratch],
            _ => ZERO,
        }
    }

    fn def_flt(&self, e: Entity, scratch: usize) -> Reg {
        match self.loc(e) {
            Some(Loc::FReg(r)) => r,
            Some(Loc::Frame(_)) => FLT_SCRATCH[scratch],
            _ => 31,
        }
    }

    /// Store a computed value back if the entity is spilled.
    fn writeback(&mut self, e: Entity, r: Reg, float: bool) {
        if let Some(Loc::Frame(o)) = self.loc(e) {
            let op = if float { Op::Stt } else { Op::Stq };
            self.push(Inst::mem(op, r, SP, (o + self.spill_base) as i16));
        }
    }

    /// Second operand of an operate instruction: literal when the value is
    /// a small compile-time constant, register otherwise.
    fn operand_rb(&mut self, v: InstId, scratch: usize) -> Result<Operand, CodegenError> {
        if let Some(Const::Int(c)) = self.f.as_const(v) {
            if (0..=255).contains(&c) {
                return Ok(Operand::Lit(c as u8));
            }
        }
        Ok(Operand::Reg(self.read_int(Entity::Val(v), scratch)?))
    }

    /// Materialize an arbitrary integer constant into `rd`.
    fn load_const(&mut self, rd: Reg, v: i64) {
        if (-8192..=8191).contains(&v) {
            self.push(Inst::mem(Op::Lda, rd, ZERO, v as i16));
        } else if v >= i32::MIN as i64 && v <= i32::MAX as i64 {
            self.push(Inst::ldiw(rd, v as i32));
        } else {
            // Full 64-bit: hi32 << 32 | lo32. The helper scratch must not
            // alias the destination.
            let hi = (v >> 32) as i32;
            let lo = v as u32;
            let sc = if rd == INT_SCRATCH[2] {
                INT_SCRATCH[1]
            } else {
                INT_SCRATCH[2]
            };
            self.push(Inst::ldiw(rd, hi));
            self.push(Inst::op3(Op::Sll, rd, Operand::Lit(32), rd));
            self.push(Inst::ldiw(sc, lo as i32));
            self.push(Inst::op3(Op::Zextl, sc, Operand::Lit(0), sc));
            self.push(Inst::op3(Op::Bis, rd, Operand::Reg(sc), rd));
        }
    }

    fn move_int(&mut self, dst: Reg, src: Reg) {
        if dst != src {
            self.push(Inst::op3(Op::Bis, src, Operand::Reg(src), dst));
        }
    }

    fn move_flt(&mut self, dst: Reg, src: Reg) {
        if dst != src {
            self.push(Inst::op3(Op::Fmov, ZERO, Operand::Reg(src), dst));
        }
    }

    // ---- prologue / epilogue ----

    fn prologue(&mut self) -> Result<(), CodegenError> {
        if self.frame_size > 0 {
            self.push(Inst::mem(Op::Lda, SP, SP, -(self.frame_size as i32) as i16));
        }
        for &(r, float, o) in &self.save_area.clone() {
            let op = if float { Op::Stt } else { Op::Stq };
            self.push(Inst::mem(op, r, SP, o as i16));
        }
        if let Some(o) = self.ra_off {
            self.push(Inst::mem(Op::Stq, RA, SP, o as i16));
        }
        Ok(())
    }

    fn epilogue(&mut self) {
        if let Some(o) = self.ra_off {
            self.push(Inst::mem(Op::Ldq, RA, SP, o as i16));
        }
        for &(r, float, o) in &self.save_area.clone() {
            let op = if float { Op::Ldt } else { Op::Ldq };
            self.push(Inst::mem(op, r, SP, o as i16));
        }
        if self.frame_size > 0 {
            self.push(Inst::mem(Op::Lda, SP, SP, self.frame_size as i16));
        }
        self.push(Inst::jump(Op::Jmp, ZERO, RA));
    }

    // ---- instruction selection ----

    fn inst(&mut self, i: InstId) -> Result<(), CodegenError> {
        let e = Entity::Val(i);
        match self.f.kind(i).clone() {
            InstKind::Const(Const::Int(v)) => {
                if self.const_fully_foldable(i) {
                    return Ok(());
                }
                let rd = self.def_int(e, 0);
                if rd != ZERO {
                    self.load_const(rd, v);
                    self.writeback(e, rd, false);
                }
            }
            InstKind::Const(Const::Float(x)) => {
                let fd = self.def_flt(e, 0);
                if fd != 31 {
                    self.load_float_const(fd, x);
                    self.writeback(e, fd, true);
                }
            }
            InstKind::Copy(a) => {
                if self.f.ty(i) == Ty::Float {
                    let src = self.read_flt(Entity::Val(a), 0)?;
                    let fd = self.def_flt(e, 1);
                    self.move_flt(fd, src);
                    self.writeback(e, fd, true);
                } else {
                    let src = self.read_int(Entity::Val(a), 0)?;
                    let rd = self.def_int(e, 1);
                    self.move_int(rd, src);
                    self.writeback(e, rd, false);
                }
            }
            InstKind::Un(op, a) => self.unop(i, op, a)?,
            InstKind::Bin(op, a, b) => self.binop(i, op, a, b)?,
            InstKind::Load {
                size,
                sign,
                addr,
                float,
                ..
            } => {
                let ra = self.read_int(Entity::Val(addr), 0)?;
                if float {
                    let fd = self.def_flt(e, 0);
                    self.push(Inst::mem(Op::Ldt, fd, ra, 0));
                    self.writeback(e, fd, true);
                } else {
                    let op = match (size, sign) {
                        (MemSize::B1, Signedness::Unsigned) => Op::Ldbu,
                        (MemSize::B2, Signedness::Unsigned) => Op::Ldwu,
                        (MemSize::B4, Signedness::Unsigned) => Op::Ldlu,
                        (MemSize::B1, Signedness::Signed) => Op::Ldb,
                        (MemSize::B2, Signedness::Signed) => Op::Ldw,
                        (MemSize::B4, Signedness::Signed) => Op::Ldl,
                        (MemSize::B8, _) => Op::Ldq,
                    };
                    let rd = self.def_int(e, 1);
                    self.push(Inst::mem(op, rd, ra, 0));
                    self.writeback(e, rd, false);
                }
            }
            InstKind::Store {
                size,
                addr,
                val,
                float,
            } => {
                let ra = self.read_int(Entity::Val(addr), 0)?;
                if float {
                    let fv = self.read_flt(Entity::Val(val), 0)?;
                    self.push(Inst::mem(Op::Stt, fv, ra, 0));
                } else {
                    let rv = self.read_int(Entity::Val(val), 1)?;
                    let op = match size {
                        MemSize::B1 => Op::Stb,
                        MemSize::B2 => Op::Stw,
                        MemSize::B4 => Op::Stl,
                        MemSize::B8 => Op::Stq,
                    };
                    self.push(Inst::mem(op, rv, ra, 0));
                }
            }
            InstKind::Call { callee, args } => self.call(i, callee, &args)?,
            InstKind::CallIntrinsic { which, args } => self.intrinsic(i, which, &args)?,
            InstKind::GetVar(v) => {
                if self.f.vars[v].frame_size.is_some() {
                    return Err(CodegenError::Internal("GetVar of frame variable".into()));
                }
                if self.f.vars[v].ty == Ty::Float {
                    let src = self.read_flt(Entity::Var(v), 0)?;
                    let fd = self.def_flt(e, 1);
                    self.move_flt(fd, src);
                    self.writeback(e, fd, true);
                } else {
                    let src = self.read_int(Entity::Var(v), 0)?;
                    let rd = self.def_int(e, 1);
                    self.move_int(rd, src);
                    self.writeback(e, rd, false);
                }
            }
            InstKind::SetVar(v, x) => {
                if self.f.vars[v].ty == Ty::Float {
                    let src = self.read_flt(Entity::Val(x), 0)?;
                    let fd = self.def_flt(Entity::Var(v), 1);
                    self.move_flt(fd, src);
                    self.writeback(Entity::Var(v), fd, true);
                } else {
                    let src = self.read_int(Entity::Val(x), 0)?;
                    let rd = self.def_int(Entity::Var(v), 1);
                    self.move_int(rd, src);
                    self.writeback(Entity::Var(v), rd, false);
                }
            }
            InstKind::Param(n) => {
                let float = self.f.params.get(n as usize) == Some(&Ty::Float);
                if float {
                    let fd = self.def_flt(e, 0);
                    self.move_flt(fd, 16 + n as Reg);
                    self.writeback(e, fd, true);
                } else {
                    let rd = self.def_int(e, 0);
                    self.move_int(rd, 16 + n as Reg);
                    self.writeback(e, rd, false);
                }
            }
            InstKind::GlobalAddr(g) => {
                let rd = self.def_int(e, 0);
                if rd != ZERO {
                    let addr = self.mcx.global_addrs[g.index()];
                    self.load_const(rd, addr as i64);
                    self.writeback(e, rd, false);
                }
            }
            InstKind::FrameAddr(v) => {
                let off = *self
                    .var_frame_off
                    .get(&v)
                    .ok_or_else(|| CodegenError::Internal("FrameAddr of non-frame var".into()))?;
                let rd = self.def_int(e, 0);
                self.push(Inst::mem(Op::Lda, rd, SP, off as i16));
                self.writeback(e, rd, false);
            }
            InstKind::Hole { slot, float } => {
                if self.is_folded_hole(i) {
                    return Ok(()); // patched inline at the use
                }
                if !self.in_template() {
                    return Err(CodegenError::Internal("hole outside template".into()));
                }
                // Static load from the linearized constants table (§4).
                let at = self.tmpl.as_ref().expect("in template").at();
                if float {
                    let fd = self.def_flt(e, 0);
                    self.push(Inst::mem(Op::Ldt, fd, LIN, 0));
                    self.tmpl.as_mut().unwrap().cur_holes.push(Hole {
                        at,
                        field: HoleField::MemDisp { float: true },
                        slot,
                    });
                    self.writeback(e, fd, true);
                } else {
                    let rd = self.def_int(e, 0);
                    self.push(Inst::mem(Op::Ldq, rd, LIN, 0));
                    self.tmpl.as_mut().unwrap().cur_holes.push(Hole {
                        at,
                        field: HoleField::MemDisp { float: false },
                        slot,
                    });
                    self.writeback(e, rd, false);
                }
            }
            InstKind::Select {
                cond,
                if_true,
                if_false,
            } => {
                // Stage the condition in the third scratch so reloading the
                // arms can never clobber it.
                let c0 = self.read_int(Entity::Val(cond), 0)?;
                let rc = INT_SCRATCH[2];
                self.move_int(rc, c0);
                if self.f.ty(i) == Ty::Float {
                    let fv = self.read_flt(Entity::Val(if_false), 1)?;
                    let sc = FLT_SCRATCH[1];
                    self.move_flt(sc, fv);
                    let tv = self.read_flt(Entity::Val(if_true), 0)?;
                    self.push(Inst::op3(Op::Fcmovne, rc, Operand::Reg(tv), sc));
                    let fd = self.def_flt(e, 0);
                    self.move_flt(fd, sc);
                    self.writeback(e, fd, true);
                } else {
                    let fv = self.read_int(Entity::Val(if_false), 1)?;
                    let sc = INT_SCRATCH[1];
                    self.move_int(sc, fv);
                    let tv = self.read_int(Entity::Val(if_true), 0)?;
                    self.push(Inst::op3(Op::Cmovne, rc, Operand::Reg(tv), sc));
                    let rd = self.def_int(e, 0);
                    self.move_int(rd, sc);
                    self.writeback(e, rd, false);
                }
            }
            InstKind::Phi(_) => {
                return Err(CodegenError::Internal("φ reached code generation".into()))
            }
        }
        Ok(())
    }

    /// A constant needs no materialization when every use folds it into a
    /// literal field.
    fn const_fully_foldable(&self, i: InstId) -> bool {
        let Some(Const::Int(v)) = self.f.as_const(i) else {
            return false;
        };
        if !(0..=255).contains(&v) {
            return false;
        }
        let mut any = false;
        for (_, blk) in self.f.iter_blocks() {
            for &u in &blk.insts {
                for (pos, opnd) in self.f.kind(u).operands().into_iter().enumerate() {
                    if opnd == i {
                        any = true;
                        let ok = matches!(self.f.kind(u), InstKind::Bin(op, _, b)
                            if !op.is_float() && pos == 1 && *b == i);
                        if !ok {
                            return false;
                        }
                    }
                }
            }
            if blk.term.operands().contains(&i) {
                return false;
            }
        }
        any
    }

    fn unop(&mut self, i: InstId, op: UnOp, a: InstId) -> Result<(), CodegenError> {
        let e = Entity::Val(i);
        match op {
            UnOp::Neg => {
                let ra = self.read_int(Entity::Val(a), 0)?;
                let rd = self.def_int(e, 1);
                self.push(Inst::op3(Op::Subq, ZERO, Operand::Reg(ra), rd));
                self.writeback(e, rd, false);
            }
            UnOp::Not => {
                let ra = self.read_int(Entity::Val(a), 0)?;
                let rd = self.def_int(e, 1);
                self.push(Inst::op3(Op::Ornot, ZERO, Operand::Reg(ra), rd));
                self.writeback(e, rd, false);
            }
            UnOp::LogNot => {
                let ra = self.read_int(Entity::Val(a), 0)?;
                let rd = self.def_int(e, 1);
                self.push(Inst::op3(Op::Cmpeq, ra, Operand::Lit(0), rd));
                self.writeback(e, rd, false);
            }
            UnOp::Sext(bits) | UnOp::Zext(bits) => {
                let ra = self.read_int(Entity::Val(a), 0)?;
                let rd = self.def_int(e, 1);
                let signed = matches!(op, UnOp::Sext(_));
                let mop = match (bits, signed) {
                    (8, true) => Op::Sextb,
                    (16, true) => Op::Sextw,
                    (32, true) => Op::Sextl,
                    (8, false) => Op::Zextb,
                    (16, false) => Op::Zextw,
                    (32, false) => Op::Zextl,
                    _ => return Err(CodegenError::Internal(format!("ext width {bits}"))),
                };
                self.push(Inst::op3(mop, ra, Operand::Lit(0), rd));
                self.writeback(e, rd, false);
            }
            UnOp::FNeg => {
                let fa = self.read_flt(Entity::Val(a), 0)?;
                let fd = self.def_flt(e, 1);
                self.push(Inst::op3(Op::Fneg, ZERO, Operand::Reg(fa), fd));
                self.writeback(e, fd, true);
            }
            UnOp::IntToFloat => {
                let ra = self.read_int(Entity::Val(a), 0)?;
                let fd = self.def_flt(e, 0);
                self.push(Inst::op3(Op::Cvtqt, ra, Operand::Reg(ZERO), fd));
                self.writeback(e, fd, true);
            }
            UnOp::FloatToInt => {
                let fa = self.read_flt(Entity::Val(a), 0)?;
                let rd = self.def_int(e, 0);
                self.push(Inst::op3(Op::Cvttq, fa, Operand::Reg(ZERO), rd));
                self.writeback(e, rd, false);
            }
        }
        Ok(())
    }

    fn binop(&mut self, i: InstId, op: BinOp, a: InstId, b: InstId) -> Result<(), CodegenError> {
        use BinOp::*;
        let e = Entity::Val(i);
        if op.is_float() {
            let fa = self.read_flt(Entity::Val(a), 0)?;
            let fb = self.read_flt(Entity::Val(b), 1)?;
            let mop = match op {
                FAdd => Op::Addt,
                FSub => Op::Subt,
                FMul => Op::Mult,
                FDiv => Op::Divt,
                FCmpEq => Op::Cmpteq,
                FCmpLt => Op::Cmptlt,
                FCmpLe => Op::Cmptle,
                _ => unreachable!(),
            };
            if op.is_float_cmp() {
                let rd = self.def_int(e, 0);
                self.push(Inst::op3(mop, fa, Operand::Reg(fb), rd));
                self.writeback(e, rd, false);
            } else {
                let fd = self.def_flt(e, 0);
                self.push(Inst::op3(mop, fa, Operand::Reg(fb), fd));
                self.writeback(e, fd, true);
            }
            return Ok(());
        }
        let mop = match op {
            Add => Op::Addq,
            Sub => Op::Subq,
            Mul => Op::Mulq,
            DivS => Op::Divq,
            DivU => Op::Divqu,
            RemS => Op::Remq,
            RemU => Op::Remqu,
            And => Op::And,
            Or => Op::Bis,
            Xor => Op::Xor,
            Shl => Op::Sll,
            ShrU => Op::Srl,
            ShrS => Op::Sra,
            CmpEq => Op::Cmpeq,
            CmpNe => Op::Cmpne,
            CmpLtS => Op::Cmplt,
            CmpLeS => Op::Cmple,
            CmpLtU => Op::Cmpult,
            CmpLeU => Op::Cmpule,
            _ => unreachable!(),
        };
        let ra = self.read_int(Entity::Val(a), 0)?;
        // Folded hole in the literal position?
        let rb = if self.is_folded_hole(b) {
            let InstKind::Hole { slot, .. } = self.f.kind(b).clone() else {
                unreachable!()
            };
            let t = self
                .tmpl
                .as_mut()
                .ok_or_else(|| CodegenError::Internal("folded hole outside template".into()))?;
            t.cur_holes.push(Hole {
                at: t.at(),
                field: HoleField::Lit,
                slot,
            });
            Operand::Lit(0)
        } else {
            self.operand_rb(b, 1)?
        };
        let rd = self.def_int(e, 1);
        self.push(Inst::op3(mop, ra, rb, rd));
        self.writeback(e, rd, false);
        Ok(())
    }

    fn call(
        &mut self,
        i: InstId,
        callee: dyncomp_ir::FuncId,
        args: &[InstId],
    ) -> Result<(), CodegenError> {
        if args.len() > 6 {
            return Err(CodegenError::TooManyArgs(self.f.name.clone()));
        }
        if self.in_template()
            && !self
                .template_callable
                .get(callee.index())
                .copied()
                .unwrap_or(false)
        {
            // A callee that (transitively) contains a dynamic region would
            // re-enter the dynamic compiler mid-template, clobbering the
            // stitched code's linkage registers (LIN/CTP) for good. The
            // demand-driven inliner is expected to have removed every
            // benign call; refuse the rest.
            return Err(CodegenError::CallInTemplate(self.f.name.clone()));
        }
        for (n, &a) in args.iter().enumerate() {
            if self.f.ty(a) == Ty::Float {
                let fa = self.read_flt(Entity::Val(a), 0)?;
                self.move_flt(16 + n as Reg, fa);
            } else {
                let ra = self.read_int(Entity::Val(a), 0)?;
                self.move_int(16 + n as Reg, ra);
            }
        }
        let sc = INT_SCRATCH[1];
        if let Some(t) = self.tmpl.as_mut() {
            // Template call: load the callee's absolute entry (patched at
            // module link time) and jump through it. `Jsr` is position-
            // independent, so stitched copies relocate freely.
            let at = t.at();
            t.call_relocs.push((at + 1, callee)); // immediate = 2nd Ldiw word
            self.push(Inst::ldiw(sc, 0));
        } else {
            let item = self.asm.push(Inst::ldiw(sc, 0));
            // The immediate is the SECOND word of the Ldiw.
            self.call_relocs.push((item, callee));
        }
        self.push(Inst::jump(Op::Jsr, RA, sc));
        let e = Entity::Val(i);
        if self.f.ty(i) == Ty::Float {
            let fd = self.def_flt(e, 0);
            self.move_flt(fd, 0);
            self.writeback(e, fd, true);
        } else if self.f.ty(i) == Ty::Int {
            let rd = self.def_int(e, 0);
            self.move_int(rd, 0);
            self.writeback(e, rd, false);
        }
        Ok(())
    }

    fn intrinsic(
        &mut self,
        i: InstId,
        which: Intrinsic,
        args: &[InstId],
    ) -> Result<(), CodegenError> {
        let e = Entity::Val(i);
        match which {
            Intrinsic::Alloc => {
                let ra = self.read_int(Entity::Val(args[0]), 0)?;
                let rd = self.def_int(e, 1);
                self.push(Inst::op3(Op::Alloc, ra, Operand::Reg(ZERO), rd));
                self.writeback(e, rd, false);
            }
            Intrinsic::Max | Intrinsic::Min => {
                let ra = self.read_int(Entity::Val(args[0]), 0)?;
                let rb = self.read_int(Entity::Val(args[1]), 1)?;
                let sc = INT_SCRATCH[2];
                // sc = (a < b) for max / (b < a) for min; rd = a; cmovne sc, b.
                let (x, y) = if which == Intrinsic::Max {
                    (ra, rb)
                } else {
                    (rb, ra)
                };
                self.push(Inst::op3(Op::Cmplt, x, Operand::Reg(y), sc));
                let rd = self.def_int(e, 0);
                self.move_int(rd, ra);
                self.push(Inst::op3(Op::Cmovne, sc, Operand::Reg(rb), rd));
                self.writeback(e, rd, false);
            }
            Intrinsic::Abs => {
                // neg = -a; cond = (a < 0); rd = a; cmovne cond, neg -> rd.
                let ra = self.read_int(Entity::Val(args[0]), 0)?;
                let neg = INT_SCRATCH[1];
                let cond = INT_SCRATCH[2];
                self.push(Inst::op3(Op::Subq, ZERO, Operand::Reg(ra), neg));
                self.push(Inst::op3(Op::Cmplt, ra, Operand::Lit(0), cond));
                let rd = self.def_int(e, 0);
                self.move_int(rd, ra);
                self.push(Inst::op3(Op::Cmovne, cond, Operand::Reg(neg), rd));
                self.writeback(e, rd, false);
            }
            Intrinsic::Sqrt => {
                let fa = self.read_flt(Entity::Val(args[0]), 0)?;
                let fd = self.def_flt(e, 0);
                self.push(Inst::op3(Op::Sqrtt, ZERO, Operand::Reg(fa), fd));
                self.writeback(e, fd, true);
            }
            Intrinsic::TierProbe => {
                // The probe is opaque in the IR but trivial in machine code:
                // the emitted code always takes the specialized path into the
                // `EnterRegion` trap, where the engine may redirect to the
                // fallback copy (recorded via the branch on this probe).
                let rd = self.def_int(e, 0);
                self.load_const(rd, 1);
                self.writeback(e, rd, false);
            }
        }
        Ok(())
    }

    fn load_float_const(&mut self, fd: Reg, x: f64) {
        // Via the module float pool.
        let bits = x.to_bits();
        let next = (self.mcx.float_pool.len() as u32) * 8;
        let off = *self.mcx.float_pool.entry(bits).or_insert(next);
        self.float_pool_used = true;
        let sc = INT_SCRATCH[1];
        self.load_const(sc, (self.mcx.float_pool_addr + u64::from(off)) as i64);
        self.push(Inst::mem(Op::Ldt, fd, sc, 0));
    }

    // ---- terminators (main/setup blocks) ----

    fn terminator(
        &mut self,
        b: BlockId,
        next: Option<BlockId>,
        region_base_index: u16,
        specs: &[&RegionSpec],
        enter_pcs: &mut HashMap<dyncomp_ir::RegionId, usize>,
    ) -> Result<(), CodegenError> {
        match self.f.blocks[b].term.clone() {
            Terminator::Jump(t) => {
                if next != Some(t) {
                    self.asm.branch_to(Op::Br, ZERO, self.labels[&t]);
                }
            }
            Terminator::Branch {
                cond,
                then_b,
                else_b,
            } => {
                // A branch on a tier probe marks `else_b` as the static
                // fallback entry of the probed region (tiered lowering).
                if let InstKind::CallIntrinsic {
                    which: Intrinsic::TierProbe,
                    args,
                } = self.f.kind(cond)
                {
                    if let Some(Const::Int(r)) = args.first().and_then(|&a| self.f.as_const(a)) {
                        self.fallback_blocks
                            .insert(dyncomp_ir::RegionId::from_index(r as usize), else_b);
                    }
                }
                let rc = self.read_int(Entity::Val(cond), 0)?;
                self.asm.branch_to(Op::Bne, rc, self.labels[&then_b]);
                if next != Some(else_b) {
                    self.asm.branch_to(Op::Br, ZERO, self.labels[&else_b]);
                }
            }
            Terminator::Switch {
                val,
                cases,
                default,
            } => {
                for (c, t) in cases {
                    // Reload per comparison: load_const may clobber both
                    // scratch registers for 64-bit cases.
                    if (0..=255).contains(&c) {
                        let rv = self.read_int(Entity::Val(val), 0)?;
                        let sc = INT_SCRATCH[1];
                        self.push(Inst::op3(Op::Cmpeq, rv, Operand::Lit(c as u8), sc));
                        self.asm.branch_to(Op::Bne, sc, self.labels[&t]);
                    } else {
                        let sc = INT_SCRATCH[1];
                        self.load_const(sc, c);
                        let rv = self.read_int(Entity::Val(val), 0)?;
                        self.push(Inst::op3(Op::Cmpeq, rv, Operand::Reg(sc), sc));
                        self.asm.branch_to(Op::Bne, sc, self.labels[&t]);
                    }
                }
                if next != Some(default) {
                    self.asm.branch_to(Op::Br, ZERO, self.labels[&default]);
                }
            }
            Terminator::Return(v) => {
                if let Some(v) = v {
                    if self.ret_float {
                        let fv = self.read_flt(Entity::Val(v), 0)?;
                        self.move_flt(0, fv);
                    } else {
                        let rv = self.read_int(Entity::Val(v), 0)?;
                        self.move_int(0, rv);
                    }
                }
                self.epilogue();
            }
            Terminator::EnterRegion { region, .. } => {
                let k = specs
                    .iter()
                    .position(|s| s.region == region)
                    .ok_or_else(|| CodegenError::Internal("unknown region".into()))?;
                let item = self.asm.push(Inst {
                    op: Op::EnterRegion,
                    ra: 0,
                    rb: Operand::Reg(ZERO),
                    rc: 0,
                    imm: i32::from(region_base_index + k as u16),
                });
                enter_pcs.insert(region, item);
            }
            Terminator::EndSetup { region, table, .. } => {
                let k = specs
                    .iter()
                    .position(|s| s.region == region)
                    .ok_or_else(|| CodegenError::Internal("unknown region".into()))?;
                let rt = self.read_int(Entity::Val(table), 0)?;
                self.move_int(dyncomp_machine::isa::CTP, rt);
                self.asm.push(Inst {
                    op: Op::EndSetup,
                    ra: 0,
                    rb: Operand::Reg(ZERO),
                    rc: 0,
                    imm: i32::from(region_base_index + k as u16),
                });
            }
            Terminator::Unreachable => {
                self.asm.push(Inst {
                    op: Op::Halt,
                    ra: 0,
                    rb: Operand::Reg(ZERO),
                    rc: 0,
                    imm: 0,
                });
            }
            Terminator::ConstBranch { .. } | Terminator::ConstSwitch { .. } => {
                return Err(CodegenError::Internal(
                    "constant branch outside template code".into(),
                ));
            }
        }
        Ok(())
    }

    // ---- template blocks ----

    fn template_block(&mut self, b: BlockId, spec: &RegionSpec) -> Result<(), CodegenError> {
        let start = self.tmpl.as_ref().expect("template mode").at();
        for &i in &self.f.blocks[b].insts.clone() {
            self.inst(i)?;
        }
        let marker = self.f.blocks[b].marker.clone().map(|m| match m {
            TemplateMarker::EnterLoop { root } => LoopMarker::Enter { root },
            TemplateMarker::RestartLoop { next_slot } => LoopMarker::Restart { next_slot },
            TemplateMarker::ExitLoop => LoopMarker::Exit,
        });
        let label_of =
            |t: &TemplateBuf, b2: BlockId| -> Option<u32> { t.label_of.get(&b2).copied() };
        let exit =
            match self.f.blocks[b].term.clone() {
                Terminator::Jump(t) => {
                    let tb = self.tmpl.as_ref().unwrap();
                    match label_of(tb, t) {
                        Some(l) => TmplExit::Jump(l),
                        None => {
                            // Region exit stub.
                            let idx = spec.exit_targets.iter().position(|&x| x == t).ok_or_else(
                                || CodegenError::Internal("template jump to unknown target".into()),
                            )?;
                            TmplExit::ExitRegion { exit: idx as u32 }
                        }
                    }
                }
                Terminator::Branch {
                    cond,
                    then_b,
                    else_b,
                } => {
                    let rc = self.read_int(Entity::Val(cond), 0)?;
                    let at = self.tmpl.as_ref().unwrap().at();
                    self.push(Inst::branch(Op::Bne, rc, 0));
                    let tb = self.tmpl.as_ref().unwrap();
                    let taken = label_of(tb, then_b).ok_or_else(|| {
                        CodegenError::Internal("template branch to non-template".into())
                    })?;
                    let fall = label_of(tb, else_b).ok_or_else(|| {
                        CodegenError::Internal("template branch to non-template".into())
                    })?;
                    TmplExit::CondBranch { at, taken, fall }
                }
                Terminator::ConstBranch {
                    slot,
                    then_b,
                    else_b,
                } => {
                    let tb = self.tmpl.as_ref().unwrap();
                    TmplExit::ConstBranch {
                        slot,
                        then_l: label_of(tb, then_b)
                            .ok_or_else(|| CodegenError::Internal("constbranch target".into()))?,
                        else_l: label_of(tb, else_b)
                            .ok_or_else(|| CodegenError::Internal("constbranch target".into()))?,
                    }
                }
                Terminator::ConstSwitch {
                    slot,
                    cases,
                    default,
                } => {
                    let tb = self.tmpl.as_ref().unwrap();
                    let cs: Option<Vec<(i64, u32)>> = cases
                        .iter()
                        .map(|(c, t)| label_of(tb, *t).map(|l| (*c, l)))
                        .collect();
                    TmplExit::ConstSwitch {
                        slot,
                        cases: cs
                            .ok_or_else(|| CodegenError::Internal("constswitch target".into()))?,
                        default: label_of(tb, default)
                            .ok_or_else(|| CodegenError::Internal("constswitch default".into()))?,
                    }
                }
                Terminator::Switch { .. } => {
                    return Err(CodegenError::Internal(
                        "dynamic switch inside template not legalized".into(),
                    ));
                }
                Terminator::Return(v) => {
                    if let Some(v) = v {
                        if self.ret_float {
                            let fv = self.read_flt(Entity::Val(v), 0)?;
                            self.move_flt(0, fv);
                        } else {
                            let rv = self.read_int(Entity::Val(v), 0)?;
                            self.move_int(0, rv);
                        }
                    }
                    self.epilogue();
                    TmplExit::Return
                }
                other => {
                    return Err(CodegenError::Internal(format!(
                        "terminator {other:?} inside template"
                    )))
                }
            };
        let t = self.tmpl.as_mut().unwrap();
        let end = t.at();
        let holes = std::mem::take(&mut t.cur_holes);
        let branches = std::mem::take(&mut t.cur_branches);
        t.blocks.push(TmplBlock {
            start,
            end,
            holes,
            branches,
            marker,
            exit,
            plan: None,
        });
        Ok(())
    }
}
