//! Liveness analysis and linear-scan register allocation.
//!
//! Works on post-SSA-destruction IR: the allocatable entities are SSA
//! values ([`InstId`]) and the φ-variables SSA destruction introduced
//! ([`VarId`]). Intervals are Poletto-style: `[first definition, last
//! point live]` over a fixed linear block order, widened by per-block
//! liveness so loops are covered.
//!
//! Intervals live across a call may only receive callee-saved registers
//! (the prologue saves them); others prefer caller-saved. Exhaustion spills
//! to frame slots; reloads use the two reserved codegen scratch registers.

use dyncomp_ir::{BlockId, Function, IdSet, InstId, InstKind, Ty, VarId};
use dyncomp_machine::isa::Reg;
use std::collections::HashMap;

/// An allocatable entity.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum Entity {
    /// An SSA value (instruction result).
    Val(InstId),
    /// A φ-variable from SSA destruction.
    Var(VarId),
}

/// Where an entity lives.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Loc {
    /// An integer register.
    Reg(Reg),
    /// A float register.
    FReg(Reg),
    /// A frame slot at `sp + offset`.
    Frame(i32),
}

/// Integer caller-saved allocatable registers.
pub const INT_CALLER: &[Reg] = &[1, 2, 3, 4, 5, 6, 7, 8];
/// Integer callee-saved allocatable registers.
pub const INT_CALLEE: &[Reg] = &[9, 10, 11, 12, 13, 14, 15];
/// Float caller-saved allocatable registers.
pub const FLT_CALLER: &[Reg] = &[1, 2, 3, 4, 5, 6, 7, 8, 22, 23, 24, 25];
/// Float callee-saved allocatable registers.
pub const FLT_CALLEE: &[Reg] = &[9, 10, 11, 12, 13, 14, 15];
/// Integer scratch registers reserved for the code generator (reloads and
/// address arithmetic). Three are needed so three-operand sequences
/// (selects, min/max) can stage every spilled operand without aliasing.
/// `r25` belongs to the stitcher and is never touched.
pub const INT_SCRATCH: [Reg; 3] = [22, 23, 24];
/// Float scratch registers.
pub const FLT_SCRATCH: [Reg; 2] = [29, 30];

/// The allocation result.
#[derive(Debug)]
pub struct Allocation {
    /// Location of every entity that appears in the ordered blocks.
    pub loc: HashMap<Entity, Loc>,
    /// Callee-saved integer registers used (prologue must save).
    pub used_int_callee: Vec<Reg>,
    /// Callee-saved float registers used.
    pub used_flt_callee: Vec<Reg>,
    /// Bytes of spill area needed.
    pub spill_bytes: u32,
}

struct Interval {
    ent: Entity,
    start: u32,
    end: u32,
    ty: Ty,
    crosses_call: bool,
}

fn uses_defs(f: &Function, i: InstId) -> (Vec<Entity>, Option<Entity>) {
    let k = f.kind(i);
    let mut uses: Vec<Entity> = k.operands().into_iter().map(Entity::Val).collect();
    let mut def = if k.has_result() {
        Some(Entity::Val(i))
    } else {
        None
    };
    match k {
        InstKind::GetVar(v) if f.vars[*v].frame_size.is_none() => {
            uses.push(Entity::Var(*v));
        }
        InstKind::SetVar(v, _) if f.vars[*v].frame_size.is_none() => {
            def = Some(Entity::Var(*v));
        }
        _ => {}
    }
    (uses, def)
}

/// Compute per-block live-in/out over the given block order, then assign
/// locations with linear scan.
pub fn allocate(f: &Function, order: &[BlockId]) -> Allocation {
    // ---- instruction numbering ----
    let mut pos_of_block_start: HashMap<BlockId, u32> = HashMap::new();
    let mut pos_of_block_end: HashMap<BlockId, u32> = HashMap::new();
    let mut inst_pos: HashMap<InstId, u32> = HashMap::new();
    let mut call_positions: Vec<u32> = Vec::new();
    let mut pos: u32 = 0;
    for &b in order {
        pos_of_block_start.insert(b, pos);
        for &i in &f.blocks[b].insts {
            inst_pos.insert(i, pos);
            if matches!(f.kind(i), InstKind::Call { .. }) {
                call_positions.push(pos);
            }
            pos += 1;
        }
        pos += 1; // terminator slot
        pos_of_block_end.insert(b, pos);
        pos += 1; // inter-block gap
    }

    // ---- per-block use/def sets ----
    let in_order: IdSet<BlockId> = order.iter().copied().collect();
    let mut block_use: HashMap<BlockId, Vec<Entity>> = HashMap::new();
    let mut block_def: HashMap<BlockId, Vec<Entity>> = HashMap::new();
    for &b in order {
        let mut uses = Vec::new();
        let mut defs: Vec<Entity> = Vec::new();
        for &i in &f.blocks[b].insts {
            let (u, d) = uses_defs(f, i);
            for e in u {
                if !defs.contains(&e) {
                    uses.push(e);
                }
            }
            if let Some(d) = d {
                defs.push(d);
            }
        }
        for v in f.blocks[b].term.operands() {
            let e = Entity::Val(v);
            if !defs.contains(&e) {
                uses.push(e);
            }
        }
        block_use.insert(b, uses);
        block_def.insert(b, defs);
    }

    // ---- backward liveness fixpoint ----
    let mut live_in: HashMap<BlockId, Vec<Entity>> = order.iter().map(|&b| (b, vec![])).collect();
    let mut live_out: HashMap<BlockId, Vec<Entity>> = order.iter().map(|&b| (b, vec![])).collect();
    loop {
        let mut changed = false;
        for &b in order.iter().rev() {
            let mut out: Vec<Entity> = Vec::new();
            for s in f.blocks[b].term.successors() {
                if !in_order.contains(s) {
                    continue;
                }
                for &e in &live_in[&s] {
                    if !out.contains(&e) {
                        out.push(e);
                    }
                }
            }
            let mut inn: Vec<Entity> = block_use[&b].clone();
            for &e in &out {
                if !block_def[&b].contains(&e) && !inn.contains(&e) {
                    inn.push(e);
                }
            }
            inn.sort();
            out.sort();
            if inn != live_in[&b] {
                live_in.insert(b, inn);
                changed = true;
            }
            if out != live_out[&b] {
                live_out.insert(b, out);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // ---- intervals ----
    let ty_of = |e: Entity| -> Ty {
        match e {
            Entity::Val(v) => f.ty(v),
            Entity::Var(v) => f.vars[v].ty,
        }
    };
    let mut ivals: HashMap<Entity, (u32, u32)> = HashMap::new();
    let touch = |e: Entity, p: u32, ivals: &mut HashMap<Entity, (u32, u32)>| {
        let ent = ivals.entry(e).or_insert((p, p));
        ent.0 = ent.0.min(p);
        ent.1 = ent.1.max(p);
    };
    for &b in order {
        for &i in &f.blocks[b].insts {
            let p = inst_pos[&i];
            let (u, d) = uses_defs(f, i);
            for e in u {
                touch(e, p, &mut ivals);
            }
            if let Some(d) = d {
                touch(d, p, &mut ivals);
            }
        }
        let tp = pos_of_block_end[&b] - 1;
        for v in f.blocks[b].term.operands() {
            touch(Entity::Val(v), tp, &mut ivals);
        }
        // Widen by block liveness.
        let (s, e) = (pos_of_block_start[&b], pos_of_block_end[&b]);
        for &ent in &live_in[&b] {
            touch(ent, s, &mut ivals);
        }
        for &ent in &live_out[&b] {
            touch(ent, e, &mut ivals);
        }
    }

    let mut intervals: Vec<Interval> = ivals
        .into_iter()
        .map(|(ent, (start, end))| Interval {
            ent,
            start,
            end,
            ty: ty_of(ent),
            crosses_call: call_positions.iter().any(|&c| start < c && c < end),
        })
        .collect();
    // The entity tie-breaker makes the scan order — and hence register
    // assignment — independent of `ivals`'s hash iteration order.
    intervals.sort_by_key(|iv| (iv.start, iv.end, iv.ent));

    // ---- linear scan ----
    struct Active {
        end: u32,
        reg: Reg,
        float: bool,
        callee: bool,
    }
    let mut active: Vec<Active> = Vec::new();
    let mut free_int_caller: Vec<Reg> = INT_CALLER.to_vec();
    let mut free_int_callee: Vec<Reg> = INT_CALLEE.to_vec();
    let mut free_flt_caller: Vec<Reg> = FLT_CALLER.to_vec();
    let mut free_flt_callee: Vec<Reg> = FLT_CALLEE.to_vec();
    let mut used_int_callee: Vec<Reg> = Vec::new();
    let mut used_flt_callee: Vec<Reg> = Vec::new();
    let mut loc: HashMap<Entity, Loc> = HashMap::new();
    let mut spill_off: i32 = 0;

    for iv in &intervals {
        // Expire.
        active.retain(|a| {
            if a.end < iv.start {
                let pool = match (a.float, a.callee) {
                    (false, false) => &mut free_int_caller,
                    (false, true) => &mut free_int_callee,
                    (true, false) => &mut free_flt_caller,
                    (true, true) => &mut free_flt_callee,
                };
                pool.push(a.reg);
                false
            } else {
                true
            }
        });
        if iv.ty == Ty::None {
            continue;
        }
        let float = iv.ty == Ty::Float;
        let (first, second) = if iv.crosses_call {
            // Must be callee-saved (or spilled).
            if float {
                (&mut free_flt_callee, None)
            } else {
                (&mut free_int_callee, None)
            }
        } else if float {
            (&mut free_flt_caller, Some(&mut free_flt_callee))
        } else {
            (&mut free_int_caller, Some(&mut free_int_callee))
        };
        let mut choice: Option<(Reg, bool)> = None;
        if let Some(r) = first.pop() {
            choice = Some((r, iv.crosses_call));
        } else if let Some(second) = second {
            if let Some(r) = second.pop() {
                choice = Some((r, true));
            }
        }
        match choice {
            Some((r, callee)) => {
                if callee {
                    let used = if float {
                        &mut used_flt_callee
                    } else {
                        &mut used_int_callee
                    };
                    if !used.contains(&r) {
                        used.push(r);
                    }
                }
                active.push(Active {
                    end: iv.end,
                    reg: r,
                    float,
                    callee,
                });
                loc.insert(iv.ent, if float { Loc::FReg(r) } else { Loc::Reg(r) });
            }
            None => {
                loc.insert(iv.ent, Loc::Frame(spill_off));
                spill_off += 8;
            }
        }
    }

    used_int_callee.sort_unstable();
    used_flt_callee.sort_unstable();
    Allocation {
        loc,
        used_int_callee,
        used_flt_callee,
        spill_bytes: spill_off as u32,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dyncomp_ir::{BinOp, Function, Terminator};

    #[test]
    fn simple_allocation_uses_registers() {
        let mut f = Function::new("t", vec![Ty::Int, Ty::Int], Ty::Int);
        let e = f.entry;
        let a = f.append(e, InstKind::Param(0));
        let b = f.append(e, InstKind::Param(1));
        let s = f.bin(e, BinOp::Add, a, b);
        f.blocks[e].term = Terminator::Return(Some(s));
        let alloc = allocate(&f, &[e]);
        for ent in [Entity::Val(a), Entity::Val(b), Entity::Val(s)] {
            assert!(matches!(alloc.loc[&ent], Loc::Reg(_)), "{ent:?}");
        }
        assert_eq!(alloc.spill_bytes, 0);
        assert!(alloc.used_int_callee.is_empty());
    }

    #[test]
    fn call_crossing_values_get_callee_saved() {
        let mut f = Function::new("t", vec![Ty::Int], Ty::Int);
        let e = f.entry;
        let a = f.append(e, InstKind::Param(0));
        let c = f.append(
            e,
            InstKind::Call {
                callee: dyncomp_ir::FuncId(0),
                args: vec![],
            },
        );
        let s = f.bin(e, BinOp::Add, a, c);
        f.blocks[e].term = Terminator::Return(Some(s));
        let alloc = allocate(&f, &[e]);
        match alloc.loc[&Entity::Val(a)] {
            Loc::Reg(r) => assert!(INT_CALLEE.contains(&r), "r{r} should be callee-saved"),
            other => panic!("unexpected {other:?}"),
        }
        assert!(!alloc.used_int_callee.is_empty());
    }

    #[test]
    fn loop_liveness_extends_interval() {
        // v defined before loop, used in loop body: must stay live through
        // the whole loop (live-out of latch).
        let mut f = Function::new("t", vec![Ty::Int], Ty::Int);
        let e = f.entry;
        let h = f.add_block();
        let body = f.add_block();
        let exit = f.add_block();
        let v = f.append(e, InstKind::Param(0));
        f.blocks[e].term = Terminator::Jump(h);
        let c = f.const_int(h, 1);
        f.blocks[h].term = Terminator::Branch {
            cond: c,
            then_b: body,
            else_b: exit,
        };
        let u = f.bin(body, BinOp::Add, v, v);
        f.blocks[body].term = Terminator::Jump(h);
        f.blocks[exit].term = Terminator::Return(Some(u));
        let alloc = allocate(&f, &[e, h, body, exit]);
        // u is live-out of body across the back edge (used at exit).
        assert!(alloc.loc.contains_key(&Entity::Val(u)));
        assert!(alloc.loc.contains_key(&Entity::Val(v)));
    }

    #[test]
    fn spills_when_pressure_exceeds_registers() {
        // Define 40 simultaneously live values.
        let mut f = Function::new("t", vec![], Ty::Int);
        let e = f.entry;
        let mut vals = Vec::new();
        for i in 0..40 {
            vals.push(f.const_int(e, i));
        }
        // Sum them all so all stay live until the end.
        let mut acc = vals[0];
        for &v in &vals[1..] {
            acc = f.bin(e, BinOp::Add, acc, v);
        }
        // Uses are interleaved at the end... force overlap by using first
        // constants late: re-add the early ones.
        for &v in vals.iter().take(30) {
            acc = f.bin(e, BinOp::Add, acc, v);
        }
        f.blocks[e].term = Terminator::Return(Some(acc));
        let alloc = allocate(&f, &[e]);
        let spilled = alloc
            .loc
            .values()
            .filter(|l| matches!(l, Loc::Frame(_)))
            .count();
        assert!(spilled > 0, "40 overlapping values exceed 16 registers");
        assert!(alloc.spill_bytes >= 8 * spilled as u32);
    }

    #[test]
    fn float_and_int_pools_are_separate() {
        let mut f = Function::new("t", vec![Ty::Float, Ty::Int], Ty::Float);
        let e = f.entry;
        let a = f.append(e, InstKind::Param(0));
        let b = f.append(e, InstKind::Param(1));
        let bf = f.append(e, InstKind::Un(dyncomp_ir::UnOp::IntToFloat, b));
        let s = f.bin(e, BinOp::FAdd, a, bf);
        f.blocks[e].term = Terminator::Return(Some(s));
        let alloc = allocate(&f, &[e]);
        assert!(matches!(alloc.loc[&Entity::Val(a)], Loc::FReg(_)));
        assert!(matches!(alloc.loc[&Entity::Val(b)], Loc::Reg(_)));
        assert!(matches!(alloc.loc[&Entity::Val(s)], Loc::FReg(_)));
    }
}
