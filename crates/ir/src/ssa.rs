//! SSA construction: variable accesses to value flow plus φ-instructions.
//!
//! Classic Cytron et al. construction: φs are placed at the iterated
//! dominance frontier of each variable's definition blocks, then a renaming
//! walk over the dominator tree replaces [`InstKind::GetVar`] with copies of
//! the reaching definition and deletes [`InstKind::SetVar`].
//!
//! The paper's analyses (§3.1, Appendix A) assume the dynamic region is in
//! SSA form, so this pass runs before them. Frame-allocated variables
//! (arrays, address-taken locals) are not renamed; they stay in memory and
//! are accessed through [`InstKind::FrameAddr`].

use crate::dom::DomTree;
use crate::func::Function;
use crate::ids::{BlockId, IndexVec, InstId, VarId};
use crate::inst::{InstKind, Ty};
use crate::ops::Const;
use std::collections::HashMap;

/// Convert `f` to SSA form in place.
///
/// # Panics
/// Panics if the function is already in SSA form.
pub fn construct_ssa(f: &mut Function) {
    assert!(!f.is_ssa, "function {} is already in SSA form", f.name);
    let dom = DomTree::compute(f);
    let df = dom.frontiers(f);

    // 1. Definition sites per renameable variable.
    let renameable: Vec<bool> = f.vars.iter().map(|v| v.frame_size.is_none()).collect();
    let mut def_blocks: IndexVec<VarId, Vec<BlockId>> =
        (0..f.vars.len()).map(|_| Vec::new()).collect();
    for &b in dom.rpo() {
        for &i in &f.blocks[b].insts {
            if let InstKind::SetVar(x, _) = f.kind(i) {
                if renameable[x.index()] && !def_blocks[*x].contains(&b) {
                    def_blocks[*x].push(b);
                }
            }
        }
    }

    // 2. φ placement at iterated dominance frontiers.
    let mut phi_var: HashMap<InstId, VarId> = HashMap::new();
    let mut has_phi: IndexVec<BlockId, Vec<VarId>> =
        (0..f.blocks.len()).map(|_| Vec::new()).collect();
    for x in f.vars.ids().collect::<Vec<_>>() {
        if !renameable[x.index()] || def_blocks[x].is_empty() {
            continue;
        }
        let var_ty = f.vars[x].ty;
        let mut work = def_blocks[x].clone();
        let mut placed: Vec<BlockId> = Vec::new();
        while let Some(b) = work.pop() {
            for &fr in &df[b] {
                if placed.contains(&fr) {
                    continue;
                }
                placed.push(fr);
                let phi = f.insts.push(crate::func::InstData {
                    kind: InstKind::Phi(Vec::new()),
                    ty: var_ty,
                });
                f.blocks[fr].insts.insert(0, phi);
                phi_var.insert(phi, x);
                has_phi[fr].push(x);
                if !def_blocks[x].contains(&fr) {
                    work.push(fr);
                }
            }
        }
    }

    // 3. Renaming walk over the dominator tree.
    let mut children: IndexVec<BlockId, Vec<BlockId>> =
        (0..f.blocks.len()).map(|_| Vec::new()).collect();
    for &b in dom.rpo() {
        if let Some(d) = dom.idom(b) {
            children[d].push(b);
        }
    }

    let mut stacks: IndexVec<VarId, Vec<InstId>> = (0..f.vars.len()).map(|_| Vec::new()).collect();
    // Lazily created "undefined" value (reads before any write).
    let mut undef_int: Option<InstId> = None;
    let mut undef_float: Option<InstId> = None;

    enum Step {
        Enter(BlockId),
        Leave(Vec<VarId>),
    }
    let mut walk = vec![Step::Enter(f.entry)];
    while let Some(step) = walk.pop() {
        match step {
            Step::Enter(b) => {
                let mut pushed: Vec<VarId> = Vec::new();
                // φs define first.
                let insts = f.blocks[b].insts.clone();
                for &i in &insts {
                    if let Some(&x) = phi_var.get(&i) {
                        stacks[x].push(i);
                        pushed.push(x);
                    }
                }
                // Body: rewrite reads, record writes, delete SetVar.
                let mut new_list: Vec<InstId> = Vec::with_capacity(insts.len());
                for &i in &insts {
                    if phi_var.contains_key(&i) {
                        new_list.push(i);
                        continue;
                    }
                    match f.kind(i).clone() {
                        InstKind::GetVar(x) if renameable[x.index()] => {
                            let cur = match stacks[x].last() {
                                Some(&d) => d,
                                None => {
                                    undef_value(f, &mut undef_int, &mut undef_float, f.vars[x].ty)
                                }
                            };
                            f.insts[i].kind = InstKind::Copy(cur);
                            f.insts[i].ty = f.insts[cur].ty;
                            new_list.push(i);
                        }
                        InstKind::SetVar(x, v) if renameable[x.index()] => {
                            stacks[x].push(v);
                            pushed.push(x);
                            // The SetVar instruction is dropped entirely.
                        }
                        _ => new_list.push(i),
                    }
                }
                f.blocks[b].insts = new_list;
                // Fill φ-operands of successors.
                for s in f.blocks[b].term.successors() {
                    let succ_insts = f.blocks[s].insts.clone();
                    for &i in &succ_insts {
                        if let Some(&x) = phi_var.get(&i) {
                            let cur = match stacks[x].last() {
                                Some(&d) => d,
                                None => {
                                    undef_value(f, &mut undef_int, &mut undef_float, f.vars[x].ty)
                                }
                            };
                            if let InstKind::Phi(ins) = &mut f.insts[i].kind {
                                if !ins.iter().any(|(p, _)| *p == b) {
                                    ins.push((b, cur));
                                }
                            }
                        }
                    }
                }
                walk.push(Step::Leave(pushed));
                for &c in children[b].iter().rev() {
                    walk.push(Step::Enter(c));
                }
            }
            Step::Leave(pushed) => {
                for x in pushed {
                    stacks[x].pop();
                }
            }
        }
    }

    f.is_ssa = true;
}

fn undef_value(
    f: &mut Function,
    undef_int: &mut Option<InstId>,
    undef_float: &mut Option<InstId>,
    ty: Ty,
) -> InstId {
    let slot = if ty == Ty::Float {
        undef_float
    } else {
        undef_int
    };
    if let Some(v) = *slot {
        return v;
    }
    let kind = if ty == Ty::Float {
        InstKind::Const(Const::Float(0.0))
    } else {
        InstKind::Const(Const::Int(0))
    };
    let id = f.create_inst(kind);
    let entry = f.entry;
    f.blocks[entry].insts.insert(0, id);
    *slot = Some(id);
    id
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::func::VarInfo;
    use crate::inst::Terminator;
    use crate::ops::BinOp;

    fn var(f: &mut Function, name: &str) -> VarId {
        f.vars.push(VarInfo {
            name: name.into(),
            ty: Ty::Int,
            frame_size: None,
        })
    }

    /// The paper's §3.1 merge example:
    ///   if (test) x = 1; else x = 2;  use(x)
    #[test]
    fn phi_inserted_at_merge() {
        let mut f = Function::new("m", vec![Ty::Int], Ty::Int);
        let x = var(&mut f, "x");
        let e = f.entry;
        let t = f.add_block();
        let el = f.add_block();
        let j = f.add_block();
        let test = f.append(e, InstKind::Param(0));
        f.blocks[e].term = Terminator::Branch {
            cond: test,
            then_b: t,
            else_b: el,
        };
        let c1 = f.const_int(t, 1);
        f.append(t, InstKind::SetVar(x, c1));
        f.blocks[t].term = Terminator::Jump(j);
        let c2 = f.const_int(el, 2);
        f.append(el, InstKind::SetVar(x, c2));
        f.blocks[el].term = Terminator::Jump(j);
        let u = f.append(j, InstKind::GetVar(x));
        f.blocks[j].term = Terminator::Return(Some(u));

        construct_ssa(&mut f);
        assert!(f.is_ssa);
        // Join block now begins with a φ merging c1 and c2.
        let first = f.blocks[j].insts[0];
        match f.kind(first) {
            InstKind::Phi(ins) => {
                let mut vals: Vec<InstId> = ins.iter().map(|(_, v)| *v).collect();
                vals.sort();
                assert_eq!(vals, vec![c1, c2]);
            }
            k => panic!("expected phi, got {k:?}"),
        }
        // The read became a copy of the φ.
        assert_eq!(*f.kind(u), InstKind::Copy(first));
        // No variable accesses remain in placed code (dropped SetVars stay
        // in the pool but are detached from every block).
        for (_, blk) in f.iter_blocks() {
            for &i in &blk.insts {
                assert!(!matches!(
                    f.kind(i),
                    InstKind::GetVar(_) | InstKind::SetVar(..)
                ));
            }
        }
    }

    #[test]
    fn straightline_needs_no_phi() {
        let mut f = Function::new("s", vec![], Ty::Int);
        let x = var(&mut f, "x");
        let e = f.entry;
        let c1 = f.const_int(e, 7);
        f.append(e, InstKind::SetVar(x, c1));
        let g = f.append(e, InstKind::GetVar(x));
        let c2 = f.const_int(e, 1);
        let s = f.bin(e, BinOp::Add, g, c2);
        f.append(e, InstKind::SetVar(x, s));
        let g2 = f.append(e, InstKind::GetVar(x));
        f.blocks[e].term = Terminator::Return(Some(g2));

        construct_ssa(&mut f);
        assert_eq!(*f.kind(g), InstKind::Copy(c1));
        assert_eq!(*f.kind(g2), InstKind::Copy(s));
        assert!(!f.insts.iter().any(|i| matches!(i.kind, InstKind::Phi(_))));
    }

    #[test]
    fn loop_variable_gets_header_phi() {
        // i = 0; while (i < 10) i = i + 1; return i
        let mut f = Function::new("l", vec![], Ty::Int);
        let i_var = var(&mut f, "i");
        let e = f.entry;
        let h = f.add_block();
        let body = f.add_block();
        let exit = f.add_block();
        let z = f.const_int(e, 0);
        f.append(e, InstKind::SetVar(i_var, z));
        f.blocks[e].term = Terminator::Jump(h);
        let iv = f.append(h, InstKind::GetVar(i_var));
        let ten = f.const_int(h, 10);
        let c = f.bin(h, BinOp::CmpLtS, iv, ten);
        f.blocks[h].term = Terminator::Branch {
            cond: c,
            then_b: body,
            else_b: exit,
        };
        let iv2 = f.append(body, InstKind::GetVar(i_var));
        let one = f.const_int(body, 1);
        let inc = f.bin(body, BinOp::Add, iv2, one);
        f.append(body, InstKind::SetVar(i_var, inc));
        f.blocks[body].term = Terminator::Jump(h);
        let ret = f.append(exit, InstKind::GetVar(i_var));
        f.blocks[exit].term = Terminator::Return(Some(ret));

        construct_ssa(&mut f);
        let phi = f.blocks[h].insts[0];
        match f.kind(phi) {
            InstKind::Phi(ins) => {
                assert_eq!(ins.len(), 2);
                let from_entry = ins.iter().find(|(p, _)| *p == e).unwrap().1;
                let from_body = ins.iter().find(|(p, _)| *p == body).unwrap().1;
                assert_eq!(from_entry, z);
                assert_eq!(from_body, inc);
            }
            k => panic!("expected phi, got {k:?}"),
        }
        assert_eq!(*f.kind(iv), InstKind::Copy(phi));
        assert_eq!(*f.kind(iv2), InstKind::Copy(phi));
    }

    #[test]
    fn read_before_write_yields_zero_undef() {
        let mut f = Function::new("u", vec![], Ty::Int);
        let x = var(&mut f, "x");
        let e = f.entry;
        let g = f.append(e, InstKind::GetVar(x));
        f.blocks[e].term = Terminator::Return(Some(g));
        construct_ssa(&mut f);
        match f.kind(g) {
            InstKind::Copy(v) => assert_eq!(f.as_const(*v), Some(Const::Int(0))),
            k => panic!("expected copy of undef, got {k:?}"),
        }
    }

    #[test]
    fn frame_vars_left_alone() {
        let mut f = Function::new("fr", vec![], Ty::None);
        let arr = f.vars.push(VarInfo {
            name: "a".into(),
            ty: Ty::Int,
            frame_size: Some(64),
        });
        let e = f.entry;
        let addr = f.append(e, InstKind::FrameAddr(arr));
        f.blocks[e].term = Terminator::Return(Some(addr));
        construct_ssa(&mut f);
        assert_eq!(*f.kind(addr), InstKind::FrameAddr(arr));
    }

    #[test]
    #[should_panic(expected = "already in SSA form")]
    fn double_construction_panics() {
        let mut f = Function::new("d", vec![], Ty::None);
        f.blocks[f.entry].term = Terminator::Return(None);
        construct_ssa(&mut f);
        construct_ssa(&mut f);
    }
}
