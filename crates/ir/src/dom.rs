//! Dominator tree and dominance frontiers (Cooper–Harvey–Kennedy).
//!
//! Used by SSA construction (φ placement at iterated dominance frontiers)
//! and by the loop finder.

use crate::cfg::{reverse_postorder, rpo_positions, Preds};
use crate::func::Function;
use crate::ids::{BlockId, IndexVec};

/// Immediate-dominator tree over the reachable blocks of a function.
#[derive(Clone, Debug)]
pub struct DomTree {
    idom: IndexVec<BlockId, Option<BlockId>>,
    rpo: Vec<BlockId>,
    rpo_pos: IndexVec<BlockId, usize>,
}

impl DomTree {
    /// Compute the dominator tree with the Cooper–Harvey–Kennedy iterative
    /// algorithm ("A Simple, Fast Dominance Algorithm").
    pub fn compute(f: &Function) -> Self {
        let rpo = reverse_postorder(f);
        let rpo_pos = rpo_positions(f, &rpo);
        let preds = Preds::compute(f);
        let mut idom: IndexVec<BlockId, Option<BlockId>> =
            (0..f.blocks.len()).map(|_| None).collect();
        idom[f.entry] = Some(f.entry);
        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                let mut new_idom: Option<BlockId> = None;
                for &p in preds.of(b) {
                    if idom[p].is_none() {
                        continue; // unreachable or not yet processed
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => Self::intersect(&idom, &rpo_pos, p, cur),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom[b] != Some(ni) {
                        idom[b] = Some(ni);
                        changed = true;
                    }
                }
            }
        }
        DomTree { idom, rpo, rpo_pos }
    }

    fn intersect(
        idom: &IndexVec<BlockId, Option<BlockId>>,
        pos: &IndexVec<BlockId, usize>,
        mut a: BlockId,
        mut b: BlockId,
    ) -> BlockId {
        while a != b {
            while pos[a] > pos[b] {
                a = idom[a].expect("reachable block has idom");
            }
            while pos[b] > pos[a] {
                b = idom[b].expect("reachable block has idom");
            }
        }
        a
    }

    /// Immediate dominator of `b`; `None` for the entry or unreachable
    /// blocks.
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        match self.idom[b] {
            Some(d) if d != b || self.rpo_pos[b] != 0 => Some(d),
            Some(_) => None, // entry dominates itself; report no parent
            None => None,
        }
    }

    /// Whether `b` is reachable (has a dominator entry).
    pub fn is_reachable(&self, b: BlockId) -> bool {
        self.idom[b].is_some()
    }

    /// Whether `a` dominates `b` (reflexively).
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        if !self.is_reachable(b) {
            return false;
        }
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom(cur) {
                Some(d) => cur = d,
                None => return false,
            }
        }
    }

    /// The blocks in reverse post-order (entry first).
    pub fn rpo(&self) -> &[BlockId] {
        &self.rpo
    }

    /// Position of `b` in the RPO (`usize::MAX` when unreachable).
    pub fn rpo_pos(&self, b: BlockId) -> usize {
        self.rpo_pos[b]
    }

    /// Dominance frontiers of every block.
    pub fn frontiers(&self, f: &Function) -> IndexVec<BlockId, Vec<BlockId>> {
        let preds = Preds::compute(f);
        let mut df: IndexVec<BlockId, Vec<BlockId>> =
            (0..f.blocks.len()).map(|_| Vec::new()).collect();
        for &b in &self.rpo {
            let ps = preds.of(b);
            if ps.len() < 2 {
                continue;
            }
            let Some(idom_b) = self.idom(b) else { continue };
            for &p in ps {
                if !self.is_reachable(p) {
                    continue;
                }
                let mut runner = p;
                while runner != idom_b {
                    if !df[runner].contains(&b) {
                        df[runner].push(b);
                    }
                    match self.idom(runner) {
                        Some(d) => runner = d,
                        None => break,
                    }
                }
            }
        }
        df
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::func::Function;
    use crate::inst::{Terminator, Ty};

    /// entry -> a -> c; entry -> b -> c; c -> d
    fn diamond_tail() -> Function {
        let mut f = Function::new("t", vec![], Ty::None);
        let e = f.entry;
        let a = f.add_block();
        let b = f.add_block();
        let c = f.add_block();
        let d = f.add_block();
        let cond = f.const_int(e, 1);
        f.blocks[e].term = Terminator::Branch {
            cond,
            then_b: a,
            else_b: b,
        };
        f.blocks[a].term = Terminator::Jump(c);
        f.blocks[b].term = Terminator::Jump(c);
        f.blocks[c].term = Terminator::Jump(d);
        f.blocks[d].term = Terminator::Return(None);
        f
    }

    #[test]
    fn idoms_of_diamond() {
        let f = diamond_tail();
        let dt = DomTree::compute(&f);
        assert_eq!(dt.idom(BlockId(0)), None);
        assert_eq!(dt.idom(BlockId(1)), Some(BlockId(0)));
        assert_eq!(dt.idom(BlockId(2)), Some(BlockId(0)));
        assert_eq!(dt.idom(BlockId(3)), Some(BlockId(0)));
        assert_eq!(dt.idom(BlockId(4)), Some(BlockId(3)));
    }

    #[test]
    fn dominates_is_reflexive_and_transitive() {
        let f = diamond_tail();
        let dt = DomTree::compute(&f);
        assert!(dt.dominates(BlockId(0), BlockId(4)));
        assert!(dt.dominates(BlockId(3), BlockId(4)));
        assert!(dt.dominates(BlockId(2), BlockId(2)));
        assert!(!dt.dominates(BlockId(1), BlockId(3)));
        assert!(!dt.dominates(BlockId(4), BlockId(0)));
    }

    #[test]
    fn frontier_of_branch_arms_is_join() {
        let f = diamond_tail();
        let dt = DomTree::compute(&f);
        let df = dt.frontiers(&f);
        assert_eq!(df[BlockId(1)], vec![BlockId(3)]);
        assert_eq!(df[BlockId(2)], vec![BlockId(3)]);
        assert!(df[BlockId(0)].is_empty());
        assert!(df[BlockId(3)].is_empty());
    }

    #[test]
    fn loop_header_in_own_frontier() {
        // entry -> h; h -> body -> h; h -> exit
        let mut f = Function::new("l", vec![], Ty::None);
        let e = f.entry;
        let h = f.add_block();
        let body = f.add_block();
        let exit = f.add_block();
        let c = f.const_int(h, 1);
        f.blocks[e].term = Terminator::Jump(h);
        f.blocks[h].term = Terminator::Branch {
            cond: c,
            then_b: body,
            else_b: exit,
        };
        f.blocks[body].term = Terminator::Jump(h);
        f.blocks[exit].term = Terminator::Return(None);
        let dt = DomTree::compute(&f);
        let df = dt.frontiers(&f);
        assert!(df[h].contains(&h));
        assert!(df[body].contains(&h));
        assert_eq!(dt.idom(body), Some(h));
        assert_eq!(dt.idom(exit), Some(h));
    }

    #[test]
    fn unreachable_blocks_have_no_idom() {
        let mut f = diamond_tail();
        let orphan = f.add_block();
        f.blocks[orphan].term = Terminator::Return(None);
        let dt = DomTree::compute(&f);
        assert!(!dt.is_reachable(orphan));
        assert_eq!(dt.idom(orphan), None);
    }
}
