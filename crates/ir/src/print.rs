//! Human-readable printing of functions and modules.

use crate::func::{Function, Module};
use crate::inst::{InstKind, TemplateMarker, Terminator};
use std::fmt;

struct DisplayFn<'a>(&'a Function);

impl fmt::Display for Function {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        DisplayFn(self).fmt(f)
    }
}

impl fmt::Display for DisplayFn<'_> {
    fn fmt(&self, w: &mut fmt::Formatter<'_>) -> fmt::Result {
        let f = self.0;
        writeln!(
            w,
            "func {}({}) -> {:?} {{",
            f.name,
            f.params
                .iter()
                .map(|t| format!("{t:?}"))
                .collect::<Vec<_>>()
                .join(", "),
            f.ret_ty
        )?;
        for (b, blk) in f.iter_blocks() {
            let mut attrs = Vec::new();
            if b == f.entry {
                attrs.push("entry".to_string());
            }
            if blk.unrolled_header {
                attrs.push("unrolled_header".to_string());
            }
            if let Some(m) = &blk.marker {
                attrs.push(match m {
                    TemplateMarker::EnterLoop { root } => format!("enter_loop({root})"),
                    TemplateMarker::RestartLoop { next_slot } => {
                        format!("restart_loop(next={next_slot})")
                    }
                    TemplateMarker::ExitLoop => "exit_loop".to_string(),
                });
            }
            let attr_str = if attrs.is_empty() {
                String::new()
            } else {
                format!("  ; {}", attrs.join(", "))
            };
            writeln!(w, "{b}:{attr_str}")?;
            for &i in &blk.insts {
                writeln!(w, "    {}", fmt_inst(f, i))?;
            }
            writeln!(w, "    {}", fmt_term(&blk.term))?;
        }
        writeln!(w, "}}")
    }
}

/// Render a single instruction.
pub fn fmt_inst(f: &Function, i: crate::ids::InstId) -> String {
    let k = f.kind(i);
    let rhs = match k {
        InstKind::Const(c) => format!("const {c}"),
        InstKind::Copy(a) => format!("copy {a}"),
        InstKind::Un(op, a) => format!("{op} {a}"),
        InstKind::Bin(op, a, b) => format!("{op} {a}, {b}"),
        InstKind::Load {
            size,
            sign,
            addr,
            dynamic,
            float,
        } => format!(
            "load{}{}{} [{addr}]",
            if *dynamic { ".dyn" } else { "" },
            if *float { ".f" } else { "" },
            format_args!(
                ".{size}{}",
                if matches!(sign, crate::ops::Signedness::Signed) {
                    "s"
                } else {
                    "u"
                }
            ),
        ),
        InstKind::Store {
            size,
            addr,
            val,
            float,
        } => {
            format!(
                "store{}.{size} [{addr}], {val}",
                if *float { ".f" } else { "" }
            )
        }
        InstKind::Call { callee, args } => format!(
            "call {callee}({})",
            args.iter()
                .map(|a| a.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        ),
        InstKind::CallIntrinsic { which, args } => format!(
            "{}({})",
            which.name(),
            args.iter()
                .map(|a| a.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        ),
        InstKind::Phi(ins) => format!(
            "phi {}",
            ins.iter()
                .map(|(b, v)| format!("[{b}: {v}]"))
                .collect::<Vec<_>>()
                .join(", ")
        ),
        InstKind::GetVar(v) => format!("getvar {} ({})", v, f.vars[*v].name),
        InstKind::SetVar(v, x) => format!("setvar {} ({}), {x}", v, f.vars[*v].name),
        InstKind::Param(n) => format!("param {n}"),
        InstKind::GlobalAddr(g) => format!("globaladdr {g}"),
        InstKind::FrameAddr(v) => format!("frameaddr {} ({})", v, f.vars[*v].name),
        InstKind::Hole { slot, float } => {
            format!("hole{} t[{slot}]", if *float { ".f" } else { "" })
        }
        InstKind::Select {
            cond,
            if_true,
            if_false,
        } => {
            format!("select {cond} ? {if_true} : {if_false}")
        }
    };
    if k.has_result() {
        format!("{i} = {rhs}")
    } else {
        rhs
    }
}

/// Render a terminator.
pub fn fmt_term(t: &Terminator) -> String {
    match t {
        Terminator::Jump(b) => format!("jump {b}"),
        Terminator::Branch {
            cond,
            then_b,
            else_b,
        } => {
            format!("branch {cond} ? {then_b} : {else_b}")
        }
        Terminator::Switch {
            val,
            cases,
            default,
        } => format!(
            "switch {val} [{}] default {default}",
            cases
                .iter()
                .map(|(c, b)| format!("{c} => {b}"))
                .collect::<Vec<_>>()
                .join(", ")
        ),
        Terminator::Return(Some(v)) => format!("return {v}"),
        Terminator::Return(None) => "return".to_string(),
        Terminator::ConstBranch {
            slot,
            then_b,
            else_b,
        } => {
            format!("constbranch t[{slot}] ? {then_b} : {else_b}")
        }
        Terminator::ConstSwitch {
            slot,
            cases,
            default,
        } => format!(
            "constswitch t[{slot}] [{}] default {default}",
            cases
                .iter()
                .map(|(c, b)| format!("{c} => {b}"))
                .collect::<Vec<_>>()
                .join(", ")
        ),
        Terminator::EnterRegion { region, setup } => format!("enter_region {region} setup {setup}"),
        Terminator::EndSetup {
            region,
            table,
            template,
        } => {
            format!("end_setup {region} table {table} template {template}")
        }
        Terminator::Unreachable => "unreachable".to_string(),
    }
}

impl fmt::Display for Module {
    fn fmt(&self, w: &mut fmt::Formatter<'_>) -> fmt::Result {
        for g in self.globals.iter() {
            writeln!(w, "global {} : {} bytes", g.name, g.size)?;
        }
        for f in self.funcs.iter() {
            writeln!(w, "{f}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::Ty;
    use crate::ops::BinOp;

    #[test]
    fn prints_function() {
        let mut f = Function::new("demo", vec![Ty::Int], Ty::Int);
        let e = f.entry;
        let p = f.append(e, InstKind::Param(0));
        let c = f.const_int(e, 2);
        let s = f.bin(e, BinOp::Mul, p, c);
        f.blocks[e].term = Terminator::Return(Some(s));
        let out = f.to_string();
        assert!(out.contains("func demo"));
        assert!(out.contains("param 0"));
        assert!(out.contains("mul"));
        assert!(out.contains("return"));
    }
}
