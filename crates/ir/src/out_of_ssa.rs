//! SSA destruction: replace φ-instructions with copies through fresh
//! variables, sequentializing each edge's parallel copy safely (handles the
//! classic *lost-copy* and *swap* problems).
//!
//! Requires critical edges to be split first
//! ([`crate::cfg::split_critical_edges`]); the pass asserts this.

use crate::cfg::Preds;
use crate::func::{Function, VarInfo};
use crate::ids::{BlockId, InstId, VarId};
use crate::inst::InstKind;
use std::collections::HashMap;

/// Source of a pending copy during sequentialization.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Src {
    /// An ordinary SSA value.
    Val(InstId),
    /// The current value of a φ-variable (possibly overwritten by this same
    /// parallel copy, hence the ordering discipline).
    Var(VarId),
}

/// Replace every φ with variable traffic: each predecessor writes the φ's
/// fresh variable, and the φ instruction itself becomes a read of it.
///
/// After this pass `f.is_ssa` is false and the function contains
/// `GetVar`/`SetVar` again (for φ-variables only), ready for code
/// generation.
///
/// # Panics
/// Panics if a φ lives at a block with an unsplit critical in-edge.
pub fn destruct_ssa(f: &mut Function) {
    let preds = Preds::compute(f);

    // Fresh variable per φ.
    let mut phi_of_block: HashMap<BlockId, Vec<(InstId, VarId)>> = HashMap::new();
    let mut all_phis: Vec<(BlockId, InstId)> = Vec::new();
    for (b, blk) in f.iter_blocks() {
        for &i in &blk.insts {
            if matches!(f.kind(i), InstKind::Phi(_)) {
                all_phis.push((b, i));
            }
        }
    }
    for &(b, i) in &all_phis {
        let ty = f.ty(i);
        let v = f.vars.push(VarInfo {
            name: format!("phi{}", i.0),
            ty,
            frame_size: None,
        });
        phi_of_block.entry(b).or_default().push((i, v));
    }

    // For each block with φs, plan one parallel copy per predecessor.
    // Sorted: copy instructions and swap temporaries must be created in a
    // deterministic order so repeated compiles emit identical artifacts.
    let mut blocks_with_phis: Vec<BlockId> = phi_of_block.keys().copied().collect();
    blocks_with_phis.sort_unstable();
    for b in blocks_with_phis {
        let phis = phi_of_block[&b].clone();
        for &p in preds.of(b) {
            assert!(
                f.blocks[p].term.successors().len() == 1,
                "critical edge {p} -> {b} must be split before SSA destruction"
            );
            // Gather this edge's copies: dst var <- src.
            let mut copies: Vec<(VarId, Src)> = Vec::new();
            for &(phi, dst) in &phis {
                let InstKind::Phi(ins) = f.kind(phi) else {
                    unreachable!()
                };
                let Some(&(_, src_val)) = ins.iter().find(|(pp, _)| *pp == p) else {
                    continue; // operand pruned (unreachable pred)
                };
                // If the source is itself a φ of this same block, its value
                // at the end of `p` is the *current* value of that φ's
                // variable (set when the block was last entered).
                let src = match phis.iter().find(|(other, _)| *other == src_val) {
                    Some(&(_, var)) => Src::Var(var),
                    None => Src::Val(src_val),
                };
                copies.push((dst, src));
            }
            emit_parallel_copy(f, p, copies);
        }
    }

    // Turn each φ into a read of its variable.
    for &(_, i) in &all_phis {
        let var = all_phis
            .iter()
            .find(|&&(_, j)| j == i)
            .and_then(|&(b, _)| phi_of_block[&b].iter().find(|(j, _)| *j == i))
            .map(|&(_, v)| v)
            .expect("φ variable exists");
        f.insts[i].kind = InstKind::GetVar(var);
    }

    f.is_ssa = false;
}

/// Append a sequentialization of the parallel copy `copies` to the end of
/// block `p` (before its terminator).
fn emit_parallel_copy(f: &mut Function, p: BlockId, mut copies: Vec<(VarId, Src)>) {
    // Drop no-op copies (x <- x).
    copies.retain(|&(d, s)| s != Src::Var(d));
    let mut emitted: Vec<InstId> = Vec::new();
    while !copies.is_empty() {
        // A copy is safe when no other pending copy still reads its
        // destination.
        let safe = copies
            .iter()
            .position(|&(d, _)| !copies.iter().any(|&(d2, s)| d2 != d && s == Src::Var(d)));
        match safe {
            Some(idx) => {
                let (d, s) = copies.remove(idx);
                let val = match s {
                    Src::Val(v) => v,
                    Src::Var(v) => {
                        let g = f.create_inst(InstKind::GetVar(v));
                        emitted.push(g);
                        g
                    }
                };
                let st = f.create_inst(InstKind::SetVar(d, val));
                emitted.push(st);
            }
            None => {
                // Every pending destination is still read: a cycle. Save one
                // destination's current value in a temp and redirect its
                // readers there.
                let (d0, _) = copies[0];
                let ty = f.vars[d0].ty;
                let tmp = f.vars.push(VarInfo {
                    name: format!("swap{}", d0.0),
                    ty,
                    frame_size: None,
                });
                let g = f.create_inst(InstKind::GetVar(d0));
                let st = f.create_inst(InstKind::SetVar(tmp, g));
                emitted.push(g);
                emitted.push(st);
                for (_, s) in copies.iter_mut() {
                    if *s == Src::Var(d0) {
                        *s = Src::Var(tmp);
                    }
                }
            }
        }
    }
    f.blocks[p].insts.extend(emitted);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::split_critical_edges;
    use crate::eval::{EvalOutcome, Evaluator};
    use crate::func::Module;
    use crate::inst::Terminator;
    use crate::inst::Ty;
    use crate::ops::{BinOp, Const};
    use crate::ssa::construct_ssa;

    /// Build, SSA-convert, destruct, then run both in the evaluator and
    /// compare results: swap loop exercising the parallel-copy cycle case.
    #[test]
    fn swap_cycle_preserved() {
        // a = 1; b = 2; for (i = 0; i < 5; i++) { t = a; a = b; b = t; }
        // return a*10 + b  => after 5 swaps: a=2,b=1 -> 21
        let mut f = Function::new("swap", vec![], Ty::Int);
        let a = f.vars.push(VarInfo {
            name: "a".into(),
            ty: Ty::Int,
            frame_size: None,
        });
        let b = f.vars.push(VarInfo {
            name: "b".into(),
            ty: Ty::Int,
            frame_size: None,
        });
        let i = f.vars.push(VarInfo {
            name: "i".into(),
            ty: Ty::Int,
            frame_size: None,
        });
        let e = f.entry;
        let h = f.add_block();
        let body = f.add_block();
        let exit = f.add_block();
        let one = f.const_int(e, 1);
        let two = f.const_int(e, 2);
        let zero = f.const_int(e, 0);
        f.append(e, InstKind::SetVar(a, one));
        f.append(e, InstKind::SetVar(b, two));
        f.append(e, InstKind::SetVar(i, zero));
        f.blocks[e].term = Terminator::Jump(h);
        let iv = f.append(h, InstKind::GetVar(i));
        let five = f.const_int(h, 5);
        let c = f.bin(h, BinOp::CmpLtS, iv, five);
        f.blocks[h].term = Terminator::Branch {
            cond: c,
            then_b: body,
            else_b: exit,
        };
        let av = f.append(body, InstKind::GetVar(a));
        let bv = f.append(body, InstKind::GetVar(b));
        f.append(body, InstKind::SetVar(a, bv));
        f.append(body, InstKind::SetVar(b, av));
        let iv2 = f.append(body, InstKind::GetVar(i));
        let one2 = f.const_int(body, 1);
        let inc = f.bin(body, BinOp::Add, iv2, one2);
        f.append(body, InstKind::SetVar(i, inc));
        f.blocks[body].term = Terminator::Jump(h);
        let af = f.append(exit, InstKind::GetVar(a));
        let bf = f.append(exit, InstKind::GetVar(b));
        let ten = f.const_int(exit, 10);
        let m = f.bin(exit, BinOp::Mul, af, ten);
        let r = f.bin(exit, BinOp::Add, m, bf);
        f.blocks[exit].term = Terminator::Return(Some(r));

        construct_ssa(&mut f);
        split_critical_edges(&mut f);
        destruct_ssa(&mut f);
        assert!(!f.is_ssa);
        assert!(!f.insts.iter().any(|i| matches!(i.kind, InstKind::Phi(_))));

        let mut m = Module::new();
        let fid = m.funcs.push(f);
        let mut ev = Evaluator::new(&m);
        match ev.call(fid, &[]).unwrap() {
            EvalOutcome::Return(Some(v)) => assert_eq!(v as i64, 21),
            o => panic!("unexpected outcome {o:?}"),
        }
    }

    #[test]
    fn simple_merge_preserved() {
        // return p ? 3 : 4
        let mut f = Function::new("sel", vec![Ty::Int], Ty::Int);
        let x = f.vars.push(VarInfo {
            name: "x".into(),
            ty: Ty::Int,
            frame_size: None,
        });
        let e = f.entry;
        let t = f.add_block();
        let el = f.add_block();
        let j = f.add_block();
        let p = f.append(e, InstKind::Param(0));
        f.blocks[e].term = Terminator::Branch {
            cond: p,
            then_b: t,
            else_b: el,
        };
        let c3 = f.const_int(t, 3);
        f.append(t, InstKind::SetVar(x, c3));
        f.blocks[t].term = Terminator::Jump(j);
        let c4 = f.const_int(el, 4);
        f.append(el, InstKind::SetVar(x, c4));
        f.blocks[el].term = Terminator::Jump(j);
        let g = f.append(j, InstKind::GetVar(x));
        f.blocks[j].term = Terminator::Return(Some(g));

        construct_ssa(&mut f);
        split_critical_edges(&mut f);
        destruct_ssa(&mut f);

        let mut m = Module::new();
        let fid = m.funcs.push(f);
        for (arg, want) in [(1u64, 3i64), (0, 4)] {
            let mut ev = Evaluator::new(&m);
            match ev.call(fid, &[arg]).unwrap() {
                EvalOutcome::Return(Some(v)) => assert_eq!(v as i64, want),
                o => panic!("unexpected outcome {o:?}"),
            }
        }
    }

    #[test]
    fn const_folding_of_phi_sources_is_not_required() {
        // φ with identical constant sources still lowers correctly.
        let mut f = Function::new("same", vec![Ty::Int], Ty::Int);
        let x = f.vars.push(VarInfo {
            name: "x".into(),
            ty: Ty::Int,
            frame_size: None,
        });
        let e = f.entry;
        let t = f.add_block();
        let el = f.add_block();
        let j = f.add_block();
        let p = f.append(e, InstKind::Param(0));
        let c9 = f.const_int(e, 9);
        f.blocks[e].term = Terminator::Branch {
            cond: p,
            then_b: t,
            else_b: el,
        };
        f.append(t, InstKind::SetVar(x, c9));
        f.blocks[t].term = Terminator::Jump(j);
        f.append(el, InstKind::SetVar(x, c9));
        f.blocks[el].term = Terminator::Jump(j);
        let g = f.append(j, InstKind::GetVar(x));
        f.blocks[j].term = Terminator::Return(Some(g));
        construct_ssa(&mut f);
        split_critical_edges(&mut f);
        destruct_ssa(&mut f);
        let mut m = Module::new();
        let fid = m.funcs.push(f);
        let mut ev = Evaluator::new(&m);
        match ev.call(fid, &[7]).unwrap() {
            EvalOutcome::Return(Some(v)) => assert_eq!(v, 9),
            o => panic!("unexpected outcome {o:?}"),
        }
        let _ = Const::Int(0);
    }
}
