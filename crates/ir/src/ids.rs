//! Typed index newtypes and a small index-keyed vector.
//!
//! Every IR entity (block, instruction, variable, region, …) is referred to
//! by a dense integer id wrapped in a newtype, following the usual
//! compiler-IR idiom: ids are cheap to copy and hash, and [`IndexVec`] gives
//! O(1) id-to-entity access without lifetime entanglement.

use std::fmt;
use std::marker::PhantomData;

/// Types usable as a dense index key.
pub trait IdIndex: Copy + Eq + 'static {
    /// Construct from a raw index.
    ///
    /// # Panics
    /// Implementations may panic if `idx` exceeds the id's representation.
    fn from_index(idx: usize) -> Self;
    /// The raw index.
    fn index(self) -> usize;
}

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub u32);

        impl $name {
            /// Construct from a raw index.
            pub fn from_index(idx: usize) -> Self {
                assert!(idx <= u32::MAX as usize, "id overflow");
                $name(idx as u32)
            }
            /// The raw index.
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl IdIndex for $name {
            fn from_index(idx: usize) -> Self {
                $name::from_index(idx)
            }
            fn index(self) -> usize {
                $name::index(self)
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

define_id!(
    /// A basic block in a [`crate::Function`].
    BlockId,
    "b"
);
define_id!(
    /// An instruction; also names the SSA value the instruction defines.
    InstId,
    "v"
);
define_id!(
    /// A source-level variable (pre-SSA). Eliminated by SSA construction.
    VarId,
    "x"
);
define_id!(
    /// A function within a [`crate::Module`].
    FuncId,
    "f"
);
define_id!(
    /// A global datum within a [`crate::Module`].
    GlobalId,
    "g"
);
define_id!(
    /// A dynamic region within a [`crate::Function`].
    RegionId,
    "dr"
);

/// A vector keyed by a typed id.
///
/// A thin wrapper over `Vec<V>` that only admits indexing by `I`.
#[derive(Clone, PartialEq, Eq)]
pub struct IndexVec<I: IdIndex, V> {
    raw: Vec<V>,
    _marker: PhantomData<fn(I)>,
}

impl<I: IdIndex, V> IndexVec<I, V> {
    /// An empty vector.
    pub fn new() -> Self {
        IndexVec {
            raw: Vec::new(),
            _marker: PhantomData,
        }
    }

    /// An empty vector with room for `cap` elements.
    pub fn with_capacity(cap: usize) -> Self {
        IndexVec {
            raw: Vec::with_capacity(cap),
            _marker: PhantomData,
        }
    }

    /// Append `v`, returning its id.
    pub fn push(&mut self, v: V) -> I {
        let id = I::from_index(self.raw.len());
        self.raw.push(v);
        id
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.raw.len()
    }

    /// Whether the vector is empty.
    pub fn is_empty(&self) -> bool {
        self.raw.is_empty()
    }

    /// The id the next `push` will return.
    pub fn next_id(&self) -> I {
        I::from_index(self.raw.len())
    }

    /// Iterate over `(id, &value)` pairs.
    pub fn iter_enumerated(&self) -> impl Iterator<Item = (I, &V)> {
        self.raw
            .iter()
            .enumerate()
            .map(|(i, v)| (I::from_index(i), v))
    }

    /// Iterate over values.
    pub fn iter(&self) -> std::slice::Iter<'_, V> {
        self.raw.iter()
    }

    /// Iterate mutably over values.
    pub fn iter_mut(&mut self) -> std::slice::IterMut<'_, V> {
        self.raw.iter_mut()
    }

    /// Iterate over all ids.
    pub fn ids(&self) -> impl Iterator<Item = I> + 'static {
        (0..self.raw.len()).map(I::from_index)
    }

    /// Shared access, `None` when out of range.
    pub fn get(&self, id: I) -> Option<&V> {
        self.raw.get(id.index())
    }

    /// Mutable access, `None` when out of range.
    pub fn get_mut(&mut self, id: I) -> Option<&mut V> {
        self.raw.get_mut(id.index())
    }
}

impl<I: IdIndex, V> Default for IndexVec<I, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<I: IdIndex, V> std::ops::Index<I> for IndexVec<I, V> {
    type Output = V;
    fn index(&self, id: I) -> &V {
        &self.raw[id.index()]
    }
}

impl<I: IdIndex, V> std::ops::IndexMut<I> for IndexVec<I, V> {
    fn index_mut(&mut self, id: I) -> &mut V {
        &mut self.raw[id.index()]
    }
}

impl<I: IdIndex, V: fmt::Debug> fmt::Debug for IndexVec<I, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.raw.iter()).finish()
    }
}

impl<I: IdIndex, V> FromIterator<V> for IndexVec<I, V> {
    fn from_iter<T: IntoIterator<Item = V>>(iter: T) -> Self {
        IndexVec {
            raw: iter.into_iter().collect(),
            _marker: PhantomData,
        }
    }
}

/// A dense set of ids, backed by a bit vector.
#[derive(Clone, PartialEq, Eq, Default)]
pub struct IdSet<I: IdIndex> {
    bits: Vec<u64>,
    _marker: PhantomData<fn(I)>,
}

impl<I: IdIndex> IdSet<I> {
    /// An empty set.
    pub fn new() -> Self {
        IdSet {
            bits: Vec::new(),
            _marker: PhantomData,
        }
    }

    /// An empty set sized for ids `< n`.
    pub fn with_domain(n: usize) -> Self {
        IdSet {
            bits: vec![0; n.div_ceil(64)],
            _marker: PhantomData,
        }
    }

    /// Insert `id`; returns true if newly inserted.
    pub fn insert(&mut self, id: I) -> bool {
        let (w, b) = (id.index() / 64, id.index() % 64);
        if w >= self.bits.len() {
            self.bits.resize(w + 1, 0);
        }
        let had = self.bits[w] & (1 << b) != 0;
        self.bits[w] |= 1 << b;
        !had
    }

    /// Remove `id`; returns true if it was present.
    pub fn remove(&mut self, id: I) -> bool {
        let (w, b) = (id.index() / 64, id.index() % 64);
        if w >= self.bits.len() {
            return false;
        }
        let had = self.bits[w] & (1 << b) != 0;
        self.bits[w] &= !(1 << b);
        had
    }

    /// Membership test.
    pub fn contains(&self, id: I) -> bool {
        let (w, b) = (id.index() / 64, id.index() % 64);
        self.bits.get(w).is_some_and(|word| word & (1 << b) != 0)
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.bits.iter().all(|&w| w == 0)
    }

    /// Remove all members.
    pub fn clear(&mut self) {
        self.bits.fill(0);
    }

    /// Iterate members in increasing id order.
    pub fn iter(&self) -> impl Iterator<Item = I> + '_ {
        self.bits.iter().enumerate().flat_map(|(wi, &w)| {
            (0..64)
                .filter(move |b| w & (1 << b) != 0)
                .map(move |b| I::from_index(wi * 64 + b))
        })
    }

    /// Set union in place; returns true if `self` changed.
    pub fn union_with(&mut self, other: &Self) -> bool {
        if self.bits.len() < other.bits.len() {
            self.bits.resize(other.bits.len(), 0);
        }
        let mut changed = false;
        for (a, &b) in self.bits.iter_mut().zip(other.bits.iter()) {
            let next = *a | b;
            changed |= next != *a;
            *a = next;
        }
        changed
    }

    /// Set intersection in place; returns true if `self` changed.
    pub fn intersect_with(&mut self, other: &Self) -> bool {
        let mut changed = false;
        for (i, a) in self.bits.iter_mut().enumerate() {
            let b = other.bits.get(i).copied().unwrap_or(0);
            let next = *a & b;
            changed |= next != *a;
            *a = next;
        }
        changed
    }
}

impl<I: IdIndex> fmt::Debug for IdSet<I>
where
    I: fmt::Debug,
{
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl<I: IdIndex> FromIterator<I> for IdSet<I> {
    fn from_iter<T: IntoIterator<Item = I>>(iter: T) -> Self {
        let mut s = IdSet::new();
        for id in iter {
            s.insert(id);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_vec_push_and_index() {
        let mut v: IndexVec<BlockId, &str> = IndexVec::new();
        let a = v.push("a");
        let b = v.push("b");
        assert_eq!(a, BlockId(0));
        assert_eq!(b, BlockId(1));
        assert_eq!(v[a], "a");
        assert_eq!(v[b], "b");
        assert_eq!(v.len(), 2);
        assert_eq!(v.next_id(), BlockId(2));
    }

    #[test]
    fn index_vec_enumerated_matches_ids() {
        let v: IndexVec<InstId, i32> = [10, 20, 30].into_iter().collect();
        let pairs: Vec<_> = v.iter_enumerated().map(|(i, &x)| (i.0, x)).collect();
        assert_eq!(pairs, vec![(0, 10), (1, 20), (2, 30)]);
    }

    #[test]
    fn id_set_insert_remove_contains() {
        let mut s: IdSet<InstId> = IdSet::new();
        assert!(s.insert(InstId(3)));
        assert!(!s.insert(InstId(3)));
        assert!(s.contains(InstId(3)));
        assert!(!s.contains(InstId(2)));
        assert!(s.insert(InstId(200)));
        assert_eq!(s.len(), 2);
        assert!(s.remove(InstId(3)));
        assert!(!s.remove(InstId(3)));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![InstId(200)]);
    }

    #[test]
    fn id_set_union_intersect() {
        let a: IdSet<InstId> = [InstId(1), InstId(5), InstId(64)].into_iter().collect();
        let b: IdSet<InstId> = [InstId(5), InstId(70)].into_iter().collect();
        let mut u = a.clone();
        assert!(u.union_with(&b));
        assert_eq!(u.len(), 4);
        assert!(!u.union_with(&b));
        let mut i = a.clone();
        assert!(i.intersect_with(&b));
        assert_eq!(i.iter().collect::<Vec<_>>(), vec![InstId(5)]);
    }

    #[test]
    fn id_set_empty_and_clear() {
        let mut s: IdSet<BlockId> = IdSet::with_domain(100);
        assert!(s.is_empty());
        s.insert(BlockId(99));
        assert!(!s.is_empty());
        s.clear();
        assert!(s.is_empty());
    }
}
