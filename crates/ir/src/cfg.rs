//! CFG utilities: predecessor maps, traversal orders, edge splitting.

use crate::func::{Block, Function};
use crate::ids::{BlockId, IdSet, IndexVec};
use crate::inst::{InstKind, Terminator};

/// Predecessor lists for every block, with duplicate edges preserved
/// (a switch may target the same block from several cases).
#[derive(Clone, Debug)]
pub struct Preds {
    preds: IndexVec<BlockId, Vec<BlockId>>,
}

impl Preds {
    /// Compute predecessors of every block in `f`.
    pub fn compute(f: &Function) -> Self {
        let mut preds: IndexVec<BlockId, Vec<BlockId>> =
            (0..f.blocks.len()).map(|_| Vec::new()).collect();
        for (b, blk) in f.iter_blocks() {
            for s in blk.term.successors() {
                // Record each predecessor block once per distinct successor,
                // not once per edge: φ-operands are keyed by block id.
                if !preds[s].contains(&b) {
                    preds[s].push(b);
                }
            }
        }
        Preds { preds }
    }

    /// Predecessors of `b` (each predecessor block listed once).
    pub fn of(&self, b: BlockId) -> &[BlockId] {
        &self.preds[b]
    }
}

/// Blocks reachable from the entry.
pub fn reachable(f: &Function) -> IdSet<BlockId> {
    let mut seen = IdSet::with_domain(f.blocks.len());
    let mut stack = vec![f.entry];
    seen.insert(f.entry);
    while let Some(b) = stack.pop() {
        for s in f.blocks[b].term.successors() {
            if seen.insert(s) {
                stack.push(s);
            }
        }
    }
    seen
}

/// Reverse post-order over reachable blocks, starting at the entry.
///
/// In an RPO every block appears before its successors except along
/// retreating (loop back) edges, which makes it the canonical iteration
/// order for forward dataflow.
pub fn reverse_postorder(f: &Function) -> Vec<BlockId> {
    let mut po = Vec::with_capacity(f.blocks.len());
    let mut state: IndexVec<BlockId, u8> = (0..f.blocks.len()).map(|_| 0u8).collect();
    // Iterative DFS computing post-order.
    let mut stack: Vec<(BlockId, usize)> = vec![(f.entry, 0)];
    state[f.entry] = 1;
    while let Some(&mut (b, ref mut i)) = stack.last_mut() {
        let succs = f.blocks[b].term.successors();
        if *i < succs.len() {
            let s = succs[*i];
            *i += 1;
            if state[s] == 0 {
                state[s] = 1;
                stack.push((s, 0));
            }
        } else {
            po.push(b);
            state[b] = 2;
            stack.pop();
        }
    }
    po.reverse();
    po
}

/// Positions of blocks within an RPO sequence.
pub fn rpo_positions(f: &Function, rpo: &[BlockId]) -> IndexVec<BlockId, usize> {
    let mut pos: IndexVec<BlockId, usize> = (0..f.blocks.len()).map(|_| usize::MAX).collect();
    for (i, &b) in rpo.iter().enumerate() {
        pos[b] = i;
    }
    pos
}

/// Split every critical edge (an edge from a block with multiple successors
/// to a block with multiple predecessors) by inserting an empty block.
///
/// Needed before out-of-SSA copy insertion: copies for a φ must run on the
/// edge, and a critical edge has no block that executes exactly on it.
/// Returns the number of edges split.
pub fn split_critical_edges(f: &mut Function) -> usize {
    let preds = Preds::compute(f);
    let mut nsplit = 0;
    let block_ids: Vec<BlockId> = f.blocks.ids().collect();
    for b in block_ids {
        let succs = f.blocks[b].term.successors();
        if succs.len() < 2 {
            continue;
        }
        // Deduplicate: a switch can branch to the same target through
        // several cases; they all must route through ONE new block so that
        // φ-operands (keyed by pred block) stay unambiguous.
        let mut handled: Vec<(BlockId, BlockId)> = Vec::new();
        for s in succs {
            if preds.of(s).len() < 2 {
                continue;
            }
            if let Some(&(_, n)) = handled.iter().find(|(orig, _)| *orig == s) {
                // Reuse the split block made for an earlier duplicate edge.
                f.blocks[b]
                    .term
                    .map_successors(|t| if t == s { n } else { t });
                continue;
            }
            let n = f.blocks.push(Block {
                insts: vec![],
                term: Terminator::Jump(s),
                unrolled_header: false,
                marker: None,
            });
            // A block split onto a region-internal edge belongs to the
            // region; edges crossing the region boundary split outside it.
            for r in f.regions.iter_mut() {
                if r.blocks.contains(b) && r.blocks.contains(s) {
                    r.blocks.insert(n);
                }
            }
            f.blocks[b]
                .term
                .map_successors(|t| if t == s { n } else { t });
            // Retarget φ-operands in s from b to n.
            let insts = f.blocks[s].insts.clone();
            for id in insts {
                if let InstKind::Phi(ins) = &mut f.insts[id].kind {
                    for (p, _) in ins.iter_mut() {
                        if *p == b {
                            *p = n;
                        }
                    }
                }
            }
            handled.push((s, n));
            nsplit += 1;
        }
    }
    nsplit
}

/// Remove blocks unreachable from the entry, fixing φ-operand lists.
/// Returns the number of blocks detached (their storage is retained but
/// they are emptied and self-looped out of the CFG).
pub fn prune_unreachable(f: &mut Function) -> usize {
    let live = reachable(f);
    let mut pruned = 0;
    let ids: Vec<BlockId> = f.blocks.ids().collect();
    for b in ids {
        if !live.contains(b) {
            let blk = &mut f.blocks[b];
            if !blk.insts.is_empty() || blk.term != Terminator::Unreachable {
                blk.insts.clear();
                blk.term = Terminator::Unreachable;
                pruned += 1;
            }
        }
    }
    // Drop φ-operands that name now-unreachable predecessors.
    for b in f.blocks.ids().collect::<Vec<_>>() {
        if !live.contains(b) {
            continue;
        }
        let insts = f.blocks[b].insts.clone();
        for id in insts {
            if let InstKind::Phi(ins) = &mut f.insts[id].kind {
                ins.retain(|(p, _)| live.contains(*p));
            }
        }
    }
    pruned
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::func::Function;
    use crate::inst::Ty;

    fn diamond() -> Function {
        // entry -> (l, r) -> join
        let mut f = Function::new("d", vec![], Ty::None);
        let e = f.entry;
        let l = f.add_block();
        let r = f.add_block();
        let j = f.add_block();
        let c = f.const_int(e, 1);
        f.blocks[e].term = Terminator::Branch {
            cond: c,
            then_b: l,
            else_b: r,
        };
        f.blocks[l].term = Terminator::Jump(j);
        f.blocks[r].term = Terminator::Jump(j);
        f.blocks[j].term = Terminator::Return(None);
        f
    }

    #[test]
    fn preds_of_diamond() {
        let f = diamond();
        let p = Preds::compute(&f);
        assert_eq!(p.of(BlockId(3)), &[BlockId(1), BlockId(2)]);
        assert_eq!(p.of(BlockId(0)), &[] as &[BlockId]);
    }

    #[test]
    fn rpo_entry_first_join_last() {
        let f = diamond();
        let rpo = reverse_postorder(&f);
        assert_eq!(rpo[0], f.entry);
        assert_eq!(*rpo.last().unwrap(), BlockId(3));
        assert_eq!(rpo.len(), 4);
    }

    #[test]
    fn reachable_excludes_orphans() {
        let mut f = diamond();
        let orphan = f.add_block();
        f.blocks[orphan].term = Terminator::Return(None);
        let live = reachable(&f);
        assert!(!live.contains(orphan));
        assert_eq!(live.len(), 4);
    }

    #[test]
    fn critical_edge_split() {
        // entry branches to (a, join); a jumps to join => edge entry->join is critical.
        let mut f = Function::new("c", vec![], Ty::None);
        let e = f.entry;
        let a = f.add_block();
        let j = f.add_block();
        let c = f.const_int(e, 1);
        f.blocks[e].term = Terminator::Branch {
            cond: c,
            then_b: a,
            else_b: j,
        };
        f.blocks[a].term = Terminator::Jump(j);
        f.blocks[j].term = Terminator::Return(None);
        let n = split_critical_edges(&mut f);
        assert_eq!(n, 1);
        // entry's else successor is now a fresh block that jumps to j.
        let succs = f.blocks[e].term.successors();
        assert_eq!(succs[0], a);
        let fresh = succs[1];
        assert_ne!(fresh, j);
        assert_eq!(f.blocks[fresh].term, Terminator::Jump(j));
    }

    #[test]
    fn switch_same_target_splits_once() {
        let mut f = Function::new("s", vec![], Ty::None);
        let e = f.entry;
        let t = f.add_block();
        let d = f.add_block();
        let v = f.const_int(e, 1);
        f.blocks[e].term = Terminator::Switch {
            val: v,
            cases: vec![(1, t), (2, t)],
            default: d,
        };
        f.blocks[t].term = Terminator::Jump(d);
        f.blocks[d].term = Terminator::Return(None);
        // d has preds {e, t} -> both switch->d (via default) edges critical;
        // t has preds {e} only, so not split.
        let n = split_critical_edges(&mut f);
        assert_eq!(n, 1);
    }

    #[test]
    fn prune_unreachable_clears_blocks() {
        let mut f = diamond();
        let orphan = f.add_block();
        f.blocks[orphan].term = Terminator::Jump(f.entry);
        let n = prune_unreachable(&mut f);
        assert_eq!(n, 1);
        assert_eq!(f.blocks[orphan].term, Terminator::Unreachable);
    }
}
