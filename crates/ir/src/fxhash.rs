//! A fast, non-cryptographic hasher for small integer-like keys.
//!
//! This is the FxHash algorithm used throughout rustc (one multiply and a
//! rotate per word), reimplemented here because the workspace builds
//! offline and cannot pull in the `rustc-hash` crate. The hot maps in the
//! stitcher and the engine's keyed-region tables are keyed by small
//! integers and short integer tuples — exactly the workload SipHash (the
//! `std` default) is slowest and FxHash fastest at.

use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` wired to [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;
/// `HashSet` wired to [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;
/// The [`FxHasher`] builder.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// One-multiply-per-word hasher (rustc's FxHash).
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// Hash a slice of words directly (the engine's precomputed key hash).
#[must_use]
pub fn hash_words(words: &[u64]) -> u64 {
    let mut h = FxHasher::default();
    for &w in words {
        h.write_u64(w);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<(u32, u64), u32> = FxHashMap::default();
        for i in 0..1000u32 {
            m.insert((i, u64::from(i) * 3), i * 7);
        }
        for i in 0..1000u32 {
            assert_eq!(m[&(i, u64::from(i) * 3)], i * 7);
        }
    }

    #[test]
    fn hash_words_matches_hasher() {
        let words = [1u64, 2, 3];
        let mut h = FxHasher::default();
        for &w in &words {
            h.write_u64(w);
        }
        assert_eq!(hash_words(&words), h.finish());
    }

    #[test]
    fn distinct_keys_distinct_hashes_mostly() {
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        for i in 0..10_000u64 {
            seen.insert(hash_words(&[i]));
        }
        assert_eq!(seen.len(), 10_000, "no collisions on sequential keys");
    }
}
