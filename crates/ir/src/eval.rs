//! A reference interpreter for the IR.
//!
//! Used to validate the front end, SSA construction/destruction and the
//! optimizer independently of the simalpha back end, and to
//! differential-test the specializer: the interpreter knows how to execute
//! *specialized* functions directly (set-up code, constants table,
//! template holes, constant branches, unrolled-loop markers), giving the
//! semantics the stitcher must reproduce.

use crate::func::{Function, Module};
use crate::ids::{FuncId, GlobalId, IndexVec, InstId, RegionId, VarId};
use crate::inst::{InstKind, Intrinsic, SlotPath, TemplateMarker, Terminator};
use crate::ops::{Const, MemSize, Signedness, UnOp};
use std::collections::HashMap;
use std::fmt;

/// Interpreter failure.
#[derive(Debug, Clone, PartialEq)]
pub enum EvalError {
    /// A memory access fell outside the allocated space.
    OutOfBounds {
        /// Offending address.
        addr: u64,
    },
    /// An instruction trapped (integer division by zero, …).
    Trap(String),
    /// The step budget was exhausted (runaway loop).
    StepLimit,
    /// Executed a [`Terminator::Unreachable`].
    Unreachable,
    /// Used a value that was never computed.
    UndefinedValue(InstId),
    /// Read a variable never written (post-SSA φ-variables only).
    UndefinedVar(VarId),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::OutOfBounds { addr } => {
                write!(f, "memory access out of bounds at {addr:#x}")
            }
            EvalError::Trap(m) => write!(f, "trap: {m}"),
            EvalError::StepLimit => write!(f, "step limit exhausted"),
            EvalError::Unreachable => write!(f, "executed unreachable terminator"),
            EvalError::UndefinedValue(v) => write!(f, "use of undefined value {v}"),
            EvalError::UndefinedVar(v) => write!(f, "read of unwritten variable {v}"),
        }
    }
}

impl std::error::Error for EvalError {}

/// Result of a function call.
#[derive(Debug, Clone, PartialEq)]
pub enum EvalOutcome {
    /// The function returned (with an optional value, as raw bits).
    Return(Option<u64>),
}

/// Flat byte-addressable memory with a bump allocator.
///
/// Address 0 is reserved (null); globals start at a fixed base.
#[derive(Debug, Clone)]
pub struct Memory {
    bytes: Vec<u8>,
    brk: u64,
}

/// Base address where globals (and then the heap) are laid out.
pub const MEM_BASE: u64 = 1024;

impl Memory {
    /// Empty memory with the given capacity in bytes.
    pub fn with_capacity(cap: usize) -> Self {
        Memory {
            bytes: vec![0; cap],
            brk: MEM_BASE,
        }
    }

    /// Bump-allocate `n` bytes, 8-byte aligned. Returns the address.
    pub fn alloc(&mut self, n: u64) -> Result<u64, EvalError> {
        let addr = (self.brk + 7) & !7;
        let end = addr.checked_add(n).ok_or(EvalError::OutOfBounds { addr })?;
        if end as usize > self.bytes.len() {
            return Err(EvalError::OutOfBounds { addr });
        }
        self.brk = end;
        Ok(addr)
    }

    fn check(&self, addr: u64, len: u64) -> Result<usize, EvalError> {
        let end = addr
            .checked_add(len)
            .ok_or(EvalError::OutOfBounds { addr })?;
        if addr == 0 || end as usize > self.bytes.len() {
            return Err(EvalError::OutOfBounds { addr });
        }
        Ok(addr as usize)
    }

    /// Read `size` bytes at `addr` (little-endian), extended per `sign`.
    pub fn read(&self, addr: u64, size: MemSize, sign: Signedness) -> Result<u64, EvalError> {
        let a = self.check(addr, size.bytes())?;
        let mut raw = [0u8; 8];
        raw[..size.bytes() as usize].copy_from_slice(&self.bytes[a..a + size.bytes() as usize]);
        let v = u64::from_le_bytes(raw);
        Ok(match (size, sign) {
            (MemSize::B8, _) => v,
            (_, Signedness::Unsigned) => v,
            (s, Signedness::Signed) => {
                let sh = 64 - u32::from(s.bits());
                (((v << sh) as i64) >> sh) as u64
            }
        })
    }

    /// Write the low `size` bytes of `val` at `addr` (little-endian).
    pub fn write(&mut self, addr: u64, size: MemSize, val: u64) -> Result<(), EvalError> {
        let a = self.check(addr, size.bytes())?;
        self.bytes[a..a + size.bytes() as usize]
            .copy_from_slice(&val.to_le_bytes()[..size.bytes() as usize]);
        Ok(())
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.bytes.len()
    }

    /// Direct mutable view of the backing bytes, for backends that
    /// execute against the memory image in place. Callers must apply
    /// the same bounds discipline as [`Memory::check`] (address 0 is
    /// reserved, accesses must not cross `capacity()`).
    pub fn bytes_mut(&mut self) -> &mut [u8] {
        &mut self.bytes
    }

    /// The current bump-allocation frontier.
    pub fn brk(&self) -> u64 {
        self.brk
    }

    /// Move the bump-allocation frontier (used by loaders that place data
    /// at fixed addresses before the heap opens).
    pub fn set_brk(&mut self, brk: u64) {
        self.brk = brk;
    }

    /// Convenience: read a 64-bit word.
    pub fn read_u64(&self, addr: u64) -> Result<u64, EvalError> {
        self.read(addr, MemSize::B8, Signedness::Unsigned)
    }

    /// Convenience: write a 64-bit word.
    pub fn write_u64(&mut self, addr: u64, val: u64) -> Result<(), EvalError> {
        self.write(addr, MemSize::B8, val)
    }
}

/// Per-region dynamic state while interpreting specialized code.
#[derive(Debug, Default, Clone)]
struct RegionState {
    table: u64,
    loop_stack: Vec<(SlotPath, u64)>,
}

/// The interpreter.
pub struct Evaluator<'m> {
    module: &'m Module,
    /// The memory image (public so tests/harnesses can build data in it).
    pub mem: Memory,
    global_addrs: IndexVec<GlobalId, u64>,
    steps_left: u64,
    regions: HashMap<(FuncId, RegionId), RegionState>,
    active_region: Option<(FuncId, RegionId)>,
}

impl<'m> Evaluator<'m> {
    /// New evaluator over `module` with globals laid out in fresh memory.
    pub fn new(module: &'m Module) -> Self {
        Self::with_memory_size(module, 1 << 24)
    }

    /// New evaluator with a given memory capacity in bytes.
    pub fn with_memory_size(module: &'m Module, cap: usize) -> Self {
        let mut mem = Memory::with_capacity(cap);
        let mut global_addrs = IndexVec::new();
        for g in module.globals.iter() {
            let align = g.align.max(1);
            mem.brk = (mem.brk + align - 1) & !(align - 1);
            let addr = mem.alloc(g.size).expect("globals fit in memory");
            for (i, &byte) in g.init.iter().enumerate().take(g.size as usize) {
                mem.bytes[addr as usize + i] = byte;
            }
            global_addrs.push(addr);
        }
        Evaluator {
            module,
            mem,
            global_addrs,
            steps_left: 200_000_000,
            regions: HashMap::new(),
            active_region: None,
        }
    }

    /// Set the instruction step budget (defaults to 2·10⁸).
    pub fn set_step_limit(&mut self, steps: u64) {
        self.steps_left = steps;
    }

    /// Address of a global in the memory image.
    pub fn global_addr(&self, g: GlobalId) -> u64 {
        self.global_addrs[g]
    }

    /// Call function `fid` with raw-bit arguments.
    ///
    /// # Errors
    /// Returns an [`EvalError`] on traps, invalid memory accesses or when
    /// the step budget is exhausted.
    pub fn call(&mut self, fid: FuncId, args: &[u64]) -> Result<EvalOutcome, EvalError> {
        let f = &self.module.funcs[fid];
        let mut vals: HashMap<InstId, u64> = HashMap::new();
        let mut vars: HashMap<VarId, u64> = HashMap::new();
        // Frame variables get fresh storage per call.
        let mut frame_addrs: HashMap<VarId, u64> = HashMap::new();
        for (v, info) in f.vars.iter_enumerated() {
            if let Some(sz) = info.frame_size {
                frame_addrs.insert(v, self.mem.alloc(sz)?);
            }
        }

        let mut block = f.entry;
        let mut pred: Option<crate::ids::BlockId> = None;
        loop {
            // φs read their operands in parallel on entry.
            let mut phi_updates: Vec<(InstId, u64)> = Vec::new();
            for &i in &f.blocks[block].insts {
                if let InstKind::Phi(ins) = f.kind(i) {
                    let p = pred.expect("φ in entry block");
                    let &(_, src) = ins
                        .iter()
                        .find(|(pp, _)| *pp == p)
                        .unwrap_or_else(|| panic!("φ {i} missing operand for pred {p}"));
                    let v = *vals.get(&src).ok_or(EvalError::UndefinedValue(src))?;
                    phi_updates.push((i, v));
                }
            }
            for (i, v) in phi_updates {
                vals.insert(i, v);
            }

            for &i in &f.blocks[block].insts {
                if self.steps_left == 0 {
                    return Err(EvalError::StepLimit);
                }
                self.steps_left -= 1;
                if matches!(f.kind(i), InstKind::Phi(_)) {
                    continue;
                }
                if let Some(v) =
                    self.exec_inst(fid, f, i, args, &mut vals, &mut vars, &frame_addrs)?
                {
                    vals.insert(i, v);
                }
            }

            // Marker blocks manipulate the unrolled-loop record stack
            // *after* their instructions (φ-copies placed here by SSA
            // destruction must read the pre-advance record) and before the
            // terminator transfers control.
            if let Some(marker) = &f.blocks[block].marker {
                self.apply_marker(fid, f, marker.clone())?;
            }

            // Terminator.
            let term = f.blocks[block].term.clone();
            let next = match term {
                Terminator::Jump(b) => b,
                Terminator::Branch {
                    cond,
                    then_b,
                    else_b,
                } => {
                    let c = *vals.get(&cond).ok_or(EvalError::UndefinedValue(cond))?;
                    if c != 0 {
                        then_b
                    } else {
                        else_b
                    }
                }
                Terminator::Switch {
                    val,
                    cases,
                    default,
                } => {
                    let v = *vals.get(&val).ok_or(EvalError::UndefinedValue(val))? as i64;
                    cases
                        .iter()
                        .find(|(c, _)| *c == v)
                        .map(|(_, b)| *b)
                        .unwrap_or(default)
                }
                Terminator::Return(v) => {
                    let out = match v {
                        Some(id) => Some(*vals.get(&id).ok_or(EvalError::UndefinedValue(id))?),
                        None => None,
                    };
                    return Ok(EvalOutcome::Return(out));
                }
                Terminator::ConstBranch {
                    slot,
                    then_b,
                    else_b,
                } => {
                    let v = self.read_slot(fid, f, &slot)?;
                    if v != 0 {
                        then_b
                    } else {
                        else_b
                    }
                }
                Terminator::ConstSwitch {
                    slot,
                    cases,
                    default,
                } => {
                    let v = self.read_slot(fid, f, &slot)? as i64;
                    cases
                        .iter()
                        .find(|(c, _)| *c == v)
                        .map(|(_, b)| *b)
                        .unwrap_or(default)
                }
                Terminator::EnterRegion { region, setup } => {
                    self.regions.insert((fid, region), RegionState::default());
                    self.active_region = Some((fid, region));
                    setup
                }
                Terminator::EndSetup {
                    region,
                    table,
                    template,
                } => {
                    let t = *vals.get(&table).ok_or(EvalError::UndefinedValue(table))?;
                    let st = self.regions.entry((fid, region)).or_default();
                    st.table = t;
                    st.loop_stack.clear();
                    self.active_region = Some((fid, region));
                    template
                }
                Terminator::Unreachable => return Err(EvalError::Unreachable),
            };
            pred = Some(block);
            block = next;
        }
    }

    fn current_region_mut(&mut self, _fid: FuncId) -> &mut RegionState {
        let key = self
            .active_region
            .expect("marker or slot outside any region");
        self.regions.get_mut(&key).expect("active region has state")
    }

    fn apply_marker(
        &mut self,
        fid: FuncId,
        _f: &Function,
        marker: TemplateMarker,
    ) -> Result<(), EvalError> {
        match marker {
            TemplateMarker::EnterLoop { root } => {
                let addr = self.resolve_slot_addr(fid, &root)?;
                let head = self.mem.read_u64(addr)?;
                self.current_region_mut(fid).loop_stack.push((root, head));
            }
            TemplateMarker::RestartLoop { next_slot } => {
                let cur = self
                    .current_region_mut(fid)
                    .loop_stack
                    .last()
                    .expect("restart outside loop")
                    .1;
                let next = self.mem.read_u64(cur + 8 * u64::from(next_slot))?;
                self.current_region_mut(fid)
                    .loop_stack
                    .last_mut()
                    .unwrap()
                    .1 = next;
            }
            TemplateMarker::ExitLoop => {
                self.current_region_mut(fid)
                    .loop_stack
                    .pop()
                    .expect("exit outside loop");
            }
        }
        Ok(())
    }

    /// Address of the table slot named by `path` given current loop state.
    fn resolve_slot_addr(&mut self, fid: FuncId, path: &SlotPath) -> Result<u64, EvalError> {
        let st = self.current_region_mut(fid);
        if path.is_static() {
            return Ok(st.table + 8 * u64::from(path.0[0]));
        }
        let root = SlotPath(path.0[..path.0.len() - 1].to_vec());
        let cur = st
            .loop_stack
            .iter()
            .rev()
            .find(|(r, _)| *r == root)
            .unwrap_or_else(|| panic!("slot {path} referenced outside its loop"))
            .1;
        Ok(cur + 8 * u64::from(path.leaf()))
    }

    fn read_slot(&mut self, fid: FuncId, _f: &Function, path: &SlotPath) -> Result<u64, EvalError> {
        let addr = self.resolve_slot_addr(fid, path)?;
        self.mem.read_u64(addr)
    }

    #[allow(clippy::too_many_arguments)]
    fn exec_inst(
        &mut self,
        fid: FuncId,
        f: &Function,
        i: InstId,
        args: &[u64],
        vals: &mut HashMap<InstId, u64>,
        vars: &mut HashMap<VarId, u64>,
        frame_addrs: &HashMap<VarId, u64>,
    ) -> Result<Option<u64>, EvalError> {
        let get = |vals: &HashMap<InstId, u64>, v: InstId| -> Result<u64, EvalError> {
            vals.get(&v).copied().ok_or(EvalError::UndefinedValue(v))
        };
        let kind = f.kind(i).clone();
        Ok(match kind {
            InstKind::Const(c) => Some(c.to_bits()),
            InstKind::Copy(a) => Some(get(vals, a)?),
            InstKind::Un(op, a) => {
                let av = get(vals, a)?;
                let c = if matches!(op, UnOp::FNeg | UnOp::FloatToInt) {
                    Const::Float(f64::from_bits(av))
                } else {
                    Const::Int(av as i64)
                };
                Some(
                    op.eval(c)
                        .ok_or_else(|| EvalError::Trap(format!("unop {op}")))?
                        .to_bits(),
                )
            }
            InstKind::Bin(op, a, b) => {
                let (av, bv) = (get(vals, a)?, get(vals, b)?);
                let (ca, cb) = if op.is_float() {
                    (
                        Const::Float(f64::from_bits(av)),
                        Const::Float(f64::from_bits(bv)),
                    )
                } else {
                    (Const::Int(av as i64), Const::Int(bv as i64))
                };
                Some(
                    op.eval(ca, cb)
                        .ok_or_else(|| EvalError::Trap(format!("{op} traps")))?
                        .to_bits(),
                )
            }
            InstKind::Load {
                size, sign, addr, ..
            } => {
                let a = get(vals, addr)?;
                Some(self.mem.read(a, size, sign)?)
            }
            InstKind::Store {
                size, addr, val, ..
            } => {
                let a = get(vals, addr)?;
                let v = get(vals, val)?;
                self.mem.write(a, size, v)?;
                None
            }
            InstKind::Call {
                callee,
                args: cargs,
            } => {
                let mut argv = Vec::with_capacity(cargs.len());
                for &a in &cargs {
                    argv.push(get(vals, a)?);
                }
                // The callee may enter its own regions; restore ours after.
                let saved = self.active_region;
                let out = self.call(callee, &argv)?;
                self.active_region = saved;
                match out {
                    EvalOutcome::Return(v) => Some(v.unwrap_or(0)),
                }
            }
            InstKind::CallIntrinsic { which, args: cargs } => {
                let mut argv = Vec::with_capacity(cargs.len());
                for &a in &cargs {
                    argv.push(get(vals, a)?);
                }
                Some(match which {
                    Intrinsic::Alloc => self.mem.alloc(argv[0])?,
                    Intrinsic::Sqrt => f64::from_bits(argv[0]).sqrt().to_bits(),
                    Intrinsic::Max => (argv[0] as i64).max(argv[1] as i64) as u64,
                    Intrinsic::Min => (argv[0] as i64).min(argv[1] as i64) as u64,
                    Intrinsic::Abs => (argv[0] as i64).wrapping_abs() as u64,
                    // The IR interpreter always takes the specialized path.
                    Intrinsic::TierProbe => 1,
                })
            }
            InstKind::Phi(_) => unreachable!("φ handled at block entry"),
            InstKind::GetVar(v) => {
                if let Some(&addr) = frame_addrs.get(&v) {
                    Some(addr)
                } else {
                    Some(*vars.get(&v).ok_or(EvalError::UndefinedVar(v))?)
                }
            }
            InstKind::SetVar(v, val) => {
                let x = get(vals, val)?;
                vars.insert(v, x);
                None
            }
            InstKind::Param(n) => Some(args.get(n as usize).copied().unwrap_or(0)),
            InstKind::GlobalAddr(g) => Some(self.global_addrs[g]),
            InstKind::FrameAddr(v) => Some(*frame_addrs.get(&v).expect("frame var allocated")),
            InstKind::Hole { slot, .. } => Some(self.read_slot(fid, f, &slot)?),
            InstKind::Select {
                cond,
                if_true,
                if_false,
            } => {
                let c = get(vals, cond)?;
                Some(if c != 0 {
                    get(vals, if_true)?
                } else {
                    get(vals, if_false)?
                })
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::func::VarInfo;
    use crate::inst::Ty;
    use crate::ops::BinOp;

    #[test]
    fn arith_and_return() {
        let mut m = Module::new();
        let mut f = Function::new("f", vec![Ty::Int, Ty::Int], Ty::Int);
        let e = f.entry;
        let a = f.append(e, InstKind::Param(0));
        let b = f.append(e, InstKind::Param(1));
        let s = f.bin(e, BinOp::Add, a, b);
        let t = f.bin(e, BinOp::Mul, s, s);
        f.blocks[e].term = Terminator::Return(Some(t));
        let fid = m.funcs.push(f);
        let mut ev = Evaluator::new(&m);
        assert_eq!(
            ev.call(fid, &[3, 4]).unwrap(),
            EvalOutcome::Return(Some(49))
        );
    }

    #[test]
    fn memory_roundtrip_and_alloc() {
        let mut m = Module::new();
        let mut f = Function::new("f", vec![], Ty::Int);
        let e = f.entry;
        let n = f.const_int(e, 16);
        let p = f.append(
            e,
            InstKind::CallIntrinsic {
                which: Intrinsic::Alloc,
                args: vec![n],
            },
        );
        let v = f.const_int(e, 0x1122334455667788);
        f.append(
            e,
            InstKind::Store {
                size: MemSize::B8,
                addr: p,
                val: v,
                float: false,
            },
        );
        let l = f.append(
            e,
            InstKind::Load {
                size: MemSize::B4,
                sign: Signedness::Unsigned,
                addr: p,
                dynamic: false,
                float: false,
            },
        );
        f.blocks[e].term = Terminator::Return(Some(l));
        let fid = m.funcs.push(f);
        let mut ev = Evaluator::new(&m);
        assert_eq!(
            ev.call(fid, &[]).unwrap(),
            EvalOutcome::Return(Some(0x55667788))
        );
    }

    #[test]
    fn signed_narrow_load() {
        let mut mem = Memory::with_capacity(4096);
        let a = mem.alloc(8).unwrap();
        mem.write(a, MemSize::B2, 0xFFFE).unwrap();
        assert_eq!(
            mem.read(a, MemSize::B2, Signedness::Signed).unwrap() as i64,
            -2
        );
        assert_eq!(
            mem.read(a, MemSize::B2, Signedness::Unsigned).unwrap(),
            0xFFFE
        );
    }

    #[test]
    fn null_deref_errors() {
        let mem = Memory::with_capacity(4096);
        assert!(matches!(
            mem.read(0, MemSize::B8, Signedness::Unsigned),
            Err(EvalError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn div_by_zero_traps() {
        let mut m = Module::new();
        let mut f = Function::new("f", vec![Ty::Int], Ty::Int);
        let e = f.entry;
        let a = f.append(e, InstKind::Param(0));
        let z = f.const_int(e, 0);
        let d = f.bin(e, BinOp::DivS, a, z);
        f.blocks[e].term = Terminator::Return(Some(d));
        let fid = m.funcs.push(f);
        let mut ev = Evaluator::new(&m);
        assert!(matches!(ev.call(fid, &[1]), Err(EvalError::Trap(_))));
    }

    #[test]
    fn step_limit_catches_infinite_loop() {
        let mut m = Module::new();
        let mut f = Function::new("f", vec![], Ty::None);
        let e = f.entry;
        let h = f.add_block();
        f.blocks[e].term = Terminator::Jump(h);
        // Loop must execute at least one instruction to consume steps.
        let _c = f.const_int(h, 1);
        f.blocks[h].term = Terminator::Jump(h);
        let fid = m.funcs.push(f);
        let mut ev = Evaluator::new(&m);
        ev.set_step_limit(1000);
        assert_eq!(ev.call(fid, &[]), Err(EvalError::StepLimit));
    }

    #[test]
    fn globals_are_initialized_and_addressable() {
        let mut m = Module::new();
        m.globals.push(crate::func::Global {
            name: "tbl".into(),
            size: 8,
            init: 0xDEADBEEFu32.to_le_bytes().to_vec(),
            align: 8,
        });
        let mut f = Function::new("f", vec![], Ty::Int);
        let e = f.entry;
        let g = f.append(e, InstKind::GlobalAddr(GlobalId(0)));
        let l = f.append(
            e,
            InstKind::Load {
                size: MemSize::B4,
                sign: Signedness::Unsigned,
                addr: g,
                dynamic: false,
                float: false,
            },
        );
        f.blocks[e].term = Terminator::Return(Some(l));
        let fid = m.funcs.push(f);
        let mut ev = Evaluator::new(&m);
        assert_eq!(
            ev.call(fid, &[]).unwrap(),
            EvalOutcome::Return(Some(0xDEADBEEF))
        );
    }

    #[test]
    fn recursive_call() {
        // fact(n) = n <= 1 ? 1 : n * fact(n-1)
        let mut m = Module::new();
        let mut f = Function::new("fact", vec![Ty::Int], Ty::Int);
        let e = f.entry;
        let rec = f.add_block();
        let base = f.add_block();
        let n = f.append(e, InstKind::Param(0));
        let one = f.const_int(e, 1);
        let c = f.bin(e, BinOp::CmpLeS, n, one);
        f.blocks[e].term = Terminator::Branch {
            cond: c,
            then_b: base,
            else_b: rec,
        };
        f.blocks[base].term = Terminator::Return(Some(one));
        let nm1 = f.bin(rec, BinOp::Sub, n, one);
        let call = f.append(
            rec,
            InstKind::Call {
                callee: FuncId(0),
                args: vec![nm1],
            },
        );
        let prod = f.bin(rec, BinOp::Mul, n, call);
        f.blocks[rec].term = Terminator::Return(Some(prod));
        let fid = m.funcs.push(f);
        m.retype_calls();
        let mut ev = Evaluator::new(&m);
        assert_eq!(ev.call(fid, &[6]).unwrap(), EvalOutcome::Return(Some(720)));
    }

    #[test]
    fn float_bits_roundtrip() {
        let mut m = Module::new();
        let mut f = Function::new("f", vec![], Ty::Float);
        let e = f.entry;
        let a = f.append(e, InstKind::Const(Const::Float(1.5)));
        let b = f.append(e, InstKind::Const(Const::Float(2.25)));
        let s = f.bin(e, BinOp::FMul, a, b);
        f.blocks[e].term = Terminator::Return(Some(s));
        let fid = m.funcs.push(f);
        let mut ev = Evaluator::new(&m);
        match ev.call(fid, &[]).unwrap() {
            EvalOutcome::Return(Some(bits)) => assert_eq!(f64::from_bits(bits), 3.375),
            o => panic!("unexpected {o:?}"),
        }
    }

    #[test]
    fn frame_vars_have_stable_addresses_within_call() {
        let mut m = Module::new();
        let mut f = Function::new("f", vec![], Ty::Int);
        let arr = f.vars.push(VarInfo {
            name: "a".into(),
            ty: Ty::Int,
            frame_size: Some(32),
        });
        let e = f.entry;
        let a1 = f.append(e, InstKind::FrameAddr(arr));
        let v = f.const_int(e, 42);
        f.append(
            e,
            InstKind::Store {
                size: MemSize::B8,
                addr: a1,
                val: v,
                float: false,
            },
        );
        let a2 = f.append(e, InstKind::FrameAddr(arr));
        let l = f.append(
            e,
            InstKind::Load {
                size: MemSize::B8,
                sign: Signedness::Signed,
                addr: a2,
                dynamic: false,
                float: false,
            },
        );
        f.blocks[e].term = Terminator::Return(Some(l));
        let fid = m.funcs.push(f);
        let mut ev = Evaluator::new(&m);
        assert_eq!(ev.call(fid, &[]).unwrap(), EvalOutcome::Return(Some(42)));
    }
}
