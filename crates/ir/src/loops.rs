//! Natural-loop discovery and reducibility checking.
//!
//! The specializer needs to know, for each `unrolled`-annotated loop
//! header, the set of body blocks, the back edges, and the exit arcs. The
//! set-up code generator additionally requires the region CFG to be
//! *reducible* (every retreating edge targets a block that dominates its
//! source); MiniC's structured loops plus forward `goto` always satisfy
//! this, and [`find_loops`] reports irreducibility so callers can reject
//! the rare `goto`-into-loop graphs the scheme cannot handle.

use crate::dom::DomTree;
use crate::func::Function;
use crate::ids::{BlockId, IdSet};

/// A natural loop: the smallest block set containing the header and all
/// back-edge sources, closed under predecessors up to the header.
#[derive(Clone, Debug)]
pub struct NaturalLoop {
    /// The loop header (target of the back edges).
    pub header: BlockId,
    /// All blocks in the loop, including the header.
    pub blocks: IdSet<BlockId>,
    /// Sources of back edges (`latch -> header`).
    pub latches: Vec<BlockId>,
    /// Arcs leaving the loop: `(from inside, to outside)`.
    pub exits: Vec<(BlockId, BlockId)>,
    /// Loop nesting depth (1 = outermost).
    pub depth: u32,
    /// Index of the innermost enclosing loop in the forest, if any.
    pub parent: Option<usize>,
}

/// The loop forest of a function.
#[derive(Clone, Debug)]
pub struct LoopForest {
    /// All natural loops, outermost-first within each nest.
    pub loops: Vec<NaturalLoop>,
    /// Whether any retreating edge failed the natural-loop test.
    pub irreducible: bool,
}

impl LoopForest {
    /// The innermost loop whose header is `h`, if any.
    pub fn loop_with_header(&self, h: BlockId) -> Option<&NaturalLoop> {
        self.loops.iter().find(|l| l.header == h)
    }

    /// The innermost loop containing block `b`, if any.
    pub fn innermost_containing(&self, b: BlockId) -> Option<usize> {
        self.loops
            .iter()
            .enumerate()
            .filter(|(_, l)| l.blocks.contains(b))
            .max_by_key(|(_, l)| l.depth)
            .map(|(i, _)| i)
    }
}

/// Find all natural loops of `f`.
pub fn find_loops(f: &Function, dom: &DomTree) -> LoopForest {
    let preds = crate::cfg::Preds::compute(f);
    let mut headers: Vec<BlockId> = Vec::new();
    let mut latches_of: Vec<Vec<BlockId>> = Vec::new();
    let mut irreducible = false;

    // A back edge is an edge b -> h where h dominates b.
    for &b in dom.rpo() {
        for s in f.blocks[b].term.successors() {
            let retreating = dom.rpo_pos(s) <= dom.rpo_pos(b);
            if !retreating {
                continue;
            }
            if dom.dominates(s, b) {
                match headers.iter().position(|&h| h == s) {
                    Some(i) => latches_of[i].push(b),
                    None => {
                        headers.push(s);
                        latches_of.push(vec![b]);
                    }
                }
            } else {
                irreducible = true;
            }
        }
    }

    let mut loops: Vec<NaturalLoop> = Vec::new();
    for (i, &header) in headers.iter().enumerate() {
        let mut blocks = IdSet::with_domain(f.blocks.len());
        blocks.insert(header);
        let mut stack = latches_of[i].clone();
        for &l in &latches_of[i] {
            blocks.insert(l);
        }
        while let Some(b) = stack.pop() {
            if b == header {
                continue;
            }
            for &p in preds.of(b) {
                if dom.is_reachable(p) && blocks.insert(p) {
                    stack.push(p);
                }
            }
        }
        let mut exits = Vec::new();
        for b in blocks.iter() {
            for s in f.blocks[b].term.successors() {
                if !blocks.contains(s) {
                    exits.push((b, s));
                }
            }
        }
        loops.push(NaturalLoop {
            header,
            blocks,
            latches: latches_of[i].clone(),
            exits,
            depth: 0,
            parent: None,
        });
    }

    // Nesting: loop A is nested in B iff B's blocks contain A's header and
    // A != B. Depth = number of enclosing loops + 1.
    for i in 0..loops.len() {
        let mut parent: Option<usize> = None;
        let mut best = usize::MAX;
        for j in 0..loops.len() {
            if i != j
                && loops[j].blocks.contains(loops[i].header)
                && loops[j].header != loops[i].header
            {
                let sz = loops[j].blocks.len();
                if sz < best {
                    best = sz;
                    parent = Some(j);
                }
            }
        }
        loops[i].parent = parent;
    }
    for i in 0..loops.len() {
        let mut d = 1;
        let mut p = loops[i].parent;
        while let Some(j) = p {
            d += 1;
            p = loops[j].parent;
        }
        loops[i].depth = d;
    }

    LoopForest { loops, irreducible }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{Terminator, Ty};

    /// entry -> h; h -> (body, exit); body -> h
    fn simple_loop() -> Function {
        let mut f = Function::new("l", vec![], Ty::None);
        let e = f.entry;
        let h = f.add_block();
        let body = f.add_block();
        let exit = f.add_block();
        let c = f.const_int(h, 1);
        f.blocks[e].term = Terminator::Jump(h);
        f.blocks[h].term = Terminator::Branch {
            cond: c,
            then_b: body,
            else_b: exit,
        };
        f.blocks[body].term = Terminator::Jump(h);
        f.blocks[exit].term = Terminator::Return(None);
        f
    }

    #[test]
    fn finds_single_loop() {
        let f = simple_loop();
        let dom = DomTree::compute(&f);
        let forest = find_loops(&f, &dom);
        assert!(!forest.irreducible);
        assert_eq!(forest.loops.len(), 1);
        let l = &forest.loops[0];
        assert_eq!(l.header, BlockId(1));
        assert_eq!(l.latches, vec![BlockId(2)]);
        assert_eq!(l.blocks.len(), 2);
        assert_eq!(l.exits, vec![(BlockId(1), BlockId(3))]);
        assert_eq!(l.depth, 1);
        assert_eq!(l.parent, None);
    }

    #[test]
    fn nested_loops_have_depth() {
        // e -> h1; h1 -> (h2, exit); h2 -> (b2, h1latch); b2 -> h2; h1latch -> h1
        let mut f = Function::new("n", vec![], Ty::None);
        let e = f.entry;
        let h1 = f.add_block();
        let h2 = f.add_block();
        let b2 = f.add_block();
        let l1 = f.add_block();
        let exit = f.add_block();
        let c1 = f.const_int(h1, 1);
        let c2 = f.const_int(h2, 1);
        f.blocks[e].term = Terminator::Jump(h1);
        f.blocks[h1].term = Terminator::Branch {
            cond: c1,
            then_b: h2,
            else_b: exit,
        };
        f.blocks[h2].term = Terminator::Branch {
            cond: c2,
            then_b: b2,
            else_b: l1,
        };
        f.blocks[b2].term = Terminator::Jump(h2);
        f.blocks[l1].term = Terminator::Jump(h1);
        f.blocks[exit].term = Terminator::Return(None);
        let dom = DomTree::compute(&f);
        let forest = find_loops(&f, &dom);
        assert_eq!(forest.loops.len(), 2);
        let outer = forest.loop_with_header(h1).unwrap();
        let inner = forest.loop_with_header(h2).unwrap();
        assert_eq!(outer.depth, 1);
        assert_eq!(inner.depth, 2);
        assert!(outer.blocks.contains(h2));
        assert!(outer.blocks.contains(b2));
        assert!(!inner.blocks.contains(l1));
        assert_eq!(
            forest.innermost_containing(b2),
            forest.loops.iter().position(|l| l.header == h2)
        );
    }

    #[test]
    fn irreducible_graph_detected() {
        // e -> (a, b); a -> b; b -> a  (two-entry cycle)
        let mut f = Function::new("ir", vec![], Ty::None);
        let e = f.entry;
        let a = f.add_block();
        let b = f.add_block();
        let c = f.const_int(e, 1);
        f.blocks[e].term = Terminator::Branch {
            cond: c,
            then_b: a,
            else_b: b,
        };
        f.blocks[a].term = Terminator::Jump(b);
        f.blocks[b].term = Terminator::Jump(a);
        let dom = DomTree::compute(&f);
        let forest = find_loops(&f, &dom);
        assert!(forest.irreducible);
    }

    #[test]
    fn straight_line_has_no_loops() {
        let mut f = Function::new("s", vec![], Ty::None);
        f.blocks[f.entry].term = Terminator::Return(None);
        let dom = DomTree::compute(&f);
        let forest = find_loops(&f, &dom);
        assert!(forest.loops.is_empty());
        assert!(!forest.irreducible);
    }
}
