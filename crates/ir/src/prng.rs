//! A tiny deterministic PRNG (SplitMix64) for workload generators and
//! randomized tests.
//!
//! The repository builds offline, so it cannot depend on the `rand` /
//! `proptest` crates; every randomized workload and differential test in
//! the workspace draws from this generator instead. SplitMix64 passes
//! BigCrush, is seedable from a single `u64`, and — crucially for
//! reproducible experiments — produces the same sequence on every host.

/// SplitMix64 state.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator seeded with `seed` (any value, including 0, is fine).
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiply-shift range reduction (Lemire); the slight modulo bias
        // of the plain approach is irrelevant at our bounds, but this is
        // just as cheap.
        (((u128::from(self.next_u64())) * u128::from(bound)) >> 64) as u64
    }

    /// A uniform `u64` in `[lo, hi)`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.below(hi - lo)
    }

    /// A uniform `i64` in `[lo, hi)`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        lo.wrapping_add(self.below(hi.wrapping_sub(lo) as u64) as i64)
    }

    /// A uniform `f64` in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        lo + unit * (hi - lo)
    }

    /// True with probability `num`/`den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SplitMix64::new(7);
        for _ in 0..10_000 {
            let v = r.range_u64(3, 17);
            assert!((3..17).contains(&v));
            let s = r.range_i64(-5, 6);
            assert!((-5..6).contains(&s));
            let f = r.range_f64(-2.0, 2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
