//! Operators and compile-time constant values, with evaluation semantics.
//!
//! The same evaluator is used by the constant folder, the reference IR
//! interpreter, and (indirectly) the set-up code generator, so operator
//! semantics are defined exactly once.
//!
//! The paper's run-time-constants analysis (§3.1) classifies an operation's
//! result as a run-time constant only when the operator is *idempotent,
//! side-effect-free and non-trapping*; [`BinOp::is_specializable`] encodes
//! that predicate (notably, division and remainder are excluded because they
//! may trap).

use std::fmt;

/// A compile-time-known value.
///
/// All integers are carried as 64-bit two's-complement words (the width of
/// the simalpha target); narrower source types are represented by their
/// sign- or zero-extended values. Floats are IEEE-754 doubles.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Const {
    /// An integer (or pointer/boolean) constant.
    Int(i64),
    /// A floating-point constant.
    Float(f64),
}

impl Const {
    /// The value as a raw 64-bit word (floats are bit-cast).
    pub fn to_bits(self) -> u64 {
        match self {
            Const::Int(v) => v as u64,
            Const::Float(v) => v.to_bits(),
        }
    }

    /// The integer value, if this is an [`Const::Int`].
    pub fn as_int(self) -> Option<i64> {
        match self {
            Const::Int(v) => Some(v),
            Const::Float(_) => None,
        }
    }

    /// The float value, if this is a [`Const::Float`].
    pub fn as_float(self) -> Option<f64> {
        match self {
            Const::Float(v) => Some(v),
            Const::Int(_) => None,
        }
    }

    /// Whether the constant is "truthy" in branch position (non-zero).
    pub fn is_truthy(self) -> bool {
        match self {
            Const::Int(v) => v != 0,
            Const::Float(v) => v != 0.0,
        }
    }
}

impl fmt::Display for Const {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Const::Int(v) => write!(f, "{v}"),
            Const::Float(v) => write!(f, "{v:?}f"),
        }
    }
}

/// Binary operators of the three-address code.
///
/// Comparison operators produce `Int(0)` or `Int(1)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Wrapping integer addition.
    Add,
    /// Wrapping integer subtraction.
    Sub,
    /// Wrapping integer multiplication.
    Mul,
    /// Signed integer division (traps on zero divisor / overflow).
    DivS,
    /// Unsigned integer division (traps on zero divisor).
    DivU,
    /// Signed remainder (traps on zero divisor / overflow).
    RemS,
    /// Unsigned remainder (traps on zero divisor).
    RemU,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Left shift (shift count taken mod 64).
    Shl,
    /// Arithmetic (sign-propagating) right shift (count mod 64).
    ShrS,
    /// Logical (zero-filling) right shift (count mod 64).
    ShrU,
    /// Integer equality.
    CmpEq,
    /// Integer inequality.
    CmpNe,
    /// Signed less-than.
    CmpLtS,
    /// Signed less-or-equal.
    CmpLeS,
    /// Unsigned less-than.
    CmpLtU,
    /// Unsigned less-or-equal.
    CmpLeU,
    /// Float addition.
    FAdd,
    /// Float subtraction.
    FSub,
    /// Float multiplication.
    FMul,
    /// Float division (non-trapping: IEEE semantics).
    FDiv,
    /// Float equality (ordered).
    FCmpEq,
    /// Float less-than (ordered).
    FCmpLt,
    /// Float less-or-equal (ordered).
    FCmpLe,
}

impl BinOp {
    /// Whether the result may be classified as a run-time constant when both
    /// operands are (§3.1: idempotent, side-effect-free, non-trapping).
    ///
    /// Integer division and remainder are excluded because they can trap;
    /// hoisting them into speculatively executed set-up code would be
    /// unsound. Float division is IEEE and non-trapping, so it qualifies.
    pub fn is_specializable(self) -> bool {
        !matches!(self, BinOp::DivS | BinOp::DivU | BinOp::RemS | BinOp::RemU)
    }

    /// Whether this operator works on float operands.
    pub fn is_float(self) -> bool {
        matches!(
            self,
            BinOp::FAdd
                | BinOp::FSub
                | BinOp::FMul
                | BinOp::FDiv
                | BinOp::FCmpEq
                | BinOp::FCmpLt
                | BinOp::FCmpLe
        )
    }

    /// Whether this operator produces an integer 0/1 from float operands.
    pub fn is_float_cmp(self) -> bool {
        matches!(self, BinOp::FCmpEq | BinOp::FCmpLt | BinOp::FCmpLe)
    }

    /// Whether the operator is commutative.
    pub fn is_commutative(self) -> bool {
        matches!(
            self,
            BinOp::Add
                | BinOp::Mul
                | BinOp::And
                | BinOp::Or
                | BinOp::Xor
                | BinOp::CmpEq
                | BinOp::CmpNe
                | BinOp::FAdd
                | BinOp::FMul
                | BinOp::FCmpEq
        )
    }

    /// Evaluate on constant operands.
    ///
    /// Returns `None` when evaluation would trap (integer division by zero,
    /// signed overflow division) or when operand kinds mismatch the
    /// operator.
    pub fn eval(self, a: Const, b: Const) -> Option<Const> {
        use BinOp::*;
        if self.is_float() {
            let (x, y) = (a.as_float()?, b.as_float()?);
            return Some(match self {
                FAdd => Const::Float(x + y),
                FSub => Const::Float(x - y),
                FMul => Const::Float(x * y),
                FDiv => Const::Float(x / y),
                FCmpEq => Const::Int((x == y) as i64),
                FCmpLt => Const::Int((x < y) as i64),
                FCmpLe => Const::Int((x <= y) as i64),
                _ => unreachable!(),
            });
        }
        let (x, y) = (a.as_int()?, b.as_int()?);
        Some(match self {
            Add => Const::Int(x.wrapping_add(y)),
            Sub => Const::Int(x.wrapping_sub(y)),
            Mul => Const::Int(x.wrapping_mul(y)),
            DivS => {
                if y == 0 || (x == i64::MIN && y == -1) {
                    return None;
                }
                Const::Int(x.wrapping_div(y))
            }
            DivU => {
                if y == 0 {
                    return None;
                }
                Const::Int(((x as u64) / (y as u64)) as i64)
            }
            RemS => {
                if y == 0 || (x == i64::MIN && y == -1) {
                    return None;
                }
                Const::Int(x.wrapping_rem(y))
            }
            RemU => {
                if y == 0 {
                    return None;
                }
                Const::Int(((x as u64) % (y as u64)) as i64)
            }
            And => Const::Int(x & y),
            Or => Const::Int(x | y),
            Xor => Const::Int(x ^ y),
            Shl => Const::Int(x.wrapping_shl(y as u32 & 63)),
            ShrS => Const::Int(x.wrapping_shr(y as u32 & 63)),
            ShrU => Const::Int(((x as u64).wrapping_shr(y as u32 & 63)) as i64),
            CmpEq => Const::Int((x == y) as i64),
            CmpNe => Const::Int((x != y) as i64),
            CmpLtS => Const::Int((x < y) as i64),
            CmpLeS => Const::Int((x <= y) as i64),
            CmpLtU => Const::Int(((x as u64) < (y as u64)) as i64),
            CmpLeU => Const::Int(((x as u64) <= (y as u64)) as i64),
            FAdd | FSub | FMul | FDiv | FCmpEq | FCmpLt | FCmpLe => unreachable!(),
        })
    }

    /// The operator's mnemonic in printed IR.
    pub fn mnemonic(self) -> &'static str {
        use BinOp::*;
        match self {
            Add => "add",
            Sub => "sub",
            Mul => "mul",
            DivS => "divs",
            DivU => "divu",
            RemS => "rems",
            RemU => "remu",
            And => "and",
            Or => "or",
            Xor => "xor",
            Shl => "shl",
            ShrS => "shrs",
            ShrU => "shru",
            CmpEq => "cmpeq",
            CmpNe => "cmpne",
            CmpLtS => "cmplts",
            CmpLeS => "cmples",
            CmpLtU => "cmpltu",
            CmpLeU => "cmpleu",
            FAdd => "fadd",
            FSub => "fsub",
            FMul => "fmul",
            FDiv => "fdiv",
            FCmpEq => "fcmpeq",
            FCmpLt => "fcmplt",
            FCmpLe => "fcmple",
        }
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Unary operators of the three-address code.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Integer negation (wrapping).
    Neg,
    /// Bitwise complement.
    Not,
    /// Logical negation: 0 becomes 1, non-zero becomes 0.
    LogNot,
    /// Sign-extend the low `n` bits (operand is the bit width: 8/16/32).
    Sext(u8),
    /// Zero out all but the low `n` bits (8/16/32).
    Zext(u8),
    /// Float negation.
    FNeg,
    /// Convert signed integer to float.
    IntToFloat,
    /// Convert float to signed integer (truncating; saturates at bounds).
    FloatToInt,
}

impl UnOp {
    /// Whether the result may be a run-time constant when the operand is.
    /// All unary operators here are pure and non-trapping.
    pub fn is_specializable(self) -> bool {
        true
    }

    /// Evaluate on a constant operand; `None` on operand-kind mismatch.
    pub fn eval(self, a: Const) -> Option<Const> {
        Some(match self {
            UnOp::Neg => Const::Int(a.as_int()?.wrapping_neg()),
            UnOp::Not => Const::Int(!a.as_int()?),
            UnOp::LogNot => Const::Int((a.as_int()? == 0) as i64),
            UnOp::Sext(bits) => {
                let v = a.as_int()?;
                let shift = 64 - u32::from(bits);
                Const::Int(v.wrapping_shl(shift).wrapping_shr(shift))
            }
            UnOp::Zext(bits) => {
                let v = a.as_int()? as u64;
                let mask = if bits >= 64 {
                    u64::MAX
                } else {
                    (1u64 << bits) - 1
                };
                Const::Int((v & mask) as i64)
            }
            UnOp::FNeg => Const::Float(-a.as_float()?),
            UnOp::IntToFloat => Const::Float(a.as_int()? as f64),
            UnOp::FloatToInt => {
                let v = a.as_float()?;
                Const::Int(if v.is_nan() {
                    0
                } else if v >= i64::MAX as f64 {
                    i64::MAX
                } else if v <= i64::MIN as f64 {
                    i64::MIN
                } else {
                    v as i64
                })
            }
        })
    }

    /// The operator's mnemonic in printed IR.
    pub fn mnemonic(self) -> &'static str {
        match self {
            UnOp::Neg => "neg",
            UnOp::Not => "not",
            UnOp::LogNot => "lognot",
            UnOp::Sext(_) => "sext",
            UnOp::Zext(_) => "zext",
            UnOp::FNeg => "fneg",
            UnOp::IntToFloat => "i2f",
            UnOp::FloatToInt => "f2i",
        }
    }
}

impl fmt::Display for UnOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnOp::Sext(b) => write!(f, "sext{b}"),
            UnOp::Zext(b) => write!(f, "zext{b}"),
            other => f.write_str(other.mnemonic()),
        }
    }
}

/// Memory access width, in bytes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MemSize {
    /// One byte.
    B1,
    /// Two bytes.
    B2,
    /// Four bytes.
    B4,
    /// Eight bytes.
    B8,
}

impl MemSize {
    /// Width in bytes.
    pub fn bytes(self) -> u64 {
        match self {
            MemSize::B1 => 1,
            MemSize::B2 => 2,
            MemSize::B4 => 4,
            MemSize::B8 => 8,
        }
    }

    /// Width in bits.
    pub fn bits(self) -> u8 {
        (self.bytes() * 8) as u8
    }
}

impl fmt::Display for MemSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.bytes())
    }
}

/// Signedness of a narrow memory load's extension to 64 bits.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Signedness {
    /// Sign-extend.
    Signed,
    /// Zero-extend.
    Unsigned,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn div_by_zero_does_not_fold() {
        assert_eq!(BinOp::DivS.eval(Const::Int(1), Const::Int(0)), None);
        assert_eq!(BinOp::DivU.eval(Const::Int(1), Const::Int(0)), None);
        assert_eq!(BinOp::RemS.eval(Const::Int(1), Const::Int(0)), None);
        assert_eq!(BinOp::RemU.eval(Const::Int(1), Const::Int(0)), None);
    }

    #[test]
    fn signed_division_overflow_does_not_fold() {
        assert_eq!(BinOp::DivS.eval(Const::Int(i64::MIN), Const::Int(-1)), None);
        assert_eq!(BinOp::RemS.eval(Const::Int(i64::MIN), Const::Int(-1)), None);
    }

    #[test]
    fn trapping_ops_not_specializable() {
        assert!(!BinOp::DivS.is_specializable());
        assert!(!BinOp::DivU.is_specializable());
        assert!(!BinOp::RemS.is_specializable());
        assert!(!BinOp::RemU.is_specializable());
        assert!(BinOp::Add.is_specializable());
        assert!(BinOp::FDiv.is_specializable());
    }

    #[test]
    fn unsigned_ops_use_unsigned_semantics() {
        assert_eq!(
            BinOp::DivU.eval(Const::Int(-8), Const::Int(2)),
            Some(Const::Int(((-8i64) as u64 / 2) as i64))
        );
        assert_eq!(
            BinOp::CmpLtU.eval(Const::Int(-1), Const::Int(1)),
            Some(Const::Int(0))
        );
        assert_eq!(
            BinOp::CmpLtS.eval(Const::Int(-1), Const::Int(1)),
            Some(Const::Int(1))
        );
        assert_eq!(
            BinOp::ShrU.eval(Const::Int(-1), Const::Int(63)),
            Some(Const::Int(1))
        );
        assert_eq!(
            BinOp::ShrS.eval(Const::Int(-1), Const::Int(63)),
            Some(Const::Int(-1))
        );
    }

    #[test]
    fn wrapping_arithmetic() {
        assert_eq!(
            BinOp::Add.eval(Const::Int(i64::MAX), Const::Int(1)),
            Some(Const::Int(i64::MIN))
        );
        assert_eq!(
            BinOp::Mul.eval(Const::Int(i64::MAX), Const::Int(2)),
            Some(Const::Int(-2))
        );
    }

    #[test]
    fn float_ops() {
        assert_eq!(
            BinOp::FAdd.eval(Const::Float(1.5), Const::Float(2.0)),
            Some(Const::Float(3.5))
        );
        assert_eq!(
            BinOp::FDiv.eval(Const::Float(1.0), Const::Float(0.0)),
            Some(Const::Float(f64::INFINITY))
        );
        assert_eq!(
            BinOp::FCmpLt.eval(Const::Float(1.0), Const::Float(2.0)),
            Some(Const::Int(1))
        );
        // Kind mismatch refuses to fold rather than panicking.
        assert_eq!(BinOp::FAdd.eval(Const::Int(1), Const::Float(2.0)), None);
        assert_eq!(BinOp::Add.eval(Const::Float(1.0), Const::Int(2)), None);
    }

    #[test]
    fn extension_ops() {
        assert_eq!(UnOp::Sext(8).eval(Const::Int(0xFF)), Some(Const::Int(-1)));
        assert_eq!(UnOp::Zext(8).eval(Const::Int(-1)), Some(Const::Int(0xFF)));
        assert_eq!(
            UnOp::Sext(32).eval(Const::Int(0x8000_0000)),
            Some(Const::Int(-0x8000_0000))
        );
        assert_eq!(
            UnOp::Zext(32).eval(Const::Int(-1)),
            Some(Const::Int(0xFFFF_FFFF))
        );
    }

    #[test]
    fn float_int_conversion() {
        assert_eq!(
            UnOp::IntToFloat.eval(Const::Int(3)),
            Some(Const::Float(3.0))
        );
        assert_eq!(
            UnOp::FloatToInt.eval(Const::Float(3.9)),
            Some(Const::Int(3))
        );
        assert_eq!(
            UnOp::FloatToInt.eval(Const::Float(f64::NAN)),
            Some(Const::Int(0))
        );
        assert_eq!(
            UnOp::FloatToInt.eval(Const::Float(1e300)),
            Some(Const::Int(i64::MAX))
        );
    }

    #[test]
    fn truthiness() {
        assert!(Const::Int(5).is_truthy());
        assert!(!Const::Int(0).is_truthy());
        assert!(Const::Float(0.5).is_truthy());
        assert!(!Const::Float(0.0).is_truthy());
    }

    #[test]
    fn shift_counts_mod_64() {
        assert_eq!(
            BinOp::Shl.eval(Const::Int(1), Const::Int(64)),
            Some(Const::Int(1))
        );
        assert_eq!(
            BinOp::Shl.eval(Const::Int(1), Const::Int(65)),
            Some(Const::Int(2))
        );
    }
}
