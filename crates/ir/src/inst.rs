//! Instructions and terminators of the three-address code.
//!
//! Instructions double as SSA value names: an instruction that produces a
//! value *is* that value, named by its [`InstId`]. Before SSA construction,
//! source variables are accessed through [`InstKind::GetVar`] /
//! [`InstKind::SetVar`]; SSA construction eliminates both in favour of
//! direct value flow and φ-instructions.
//!
//! The specializer (crate `dyncomp-specialize`) introduces the template
//! pseudo-instructions of §3.2 of the paper: [`InstKind::Hole`] (a run-time
//! constant operand to be patched by the stitcher), the constant-branch
//! terminators, and marker blocks for unrolled loops.

use crate::ids::{BlockId, FuncId, GlobalId, InstId, RegionId, VarId};
use crate::ops::{BinOp, Const, MemSize, Signedness, UnOp};
use std::fmt;

/// The value kind an instruction produces.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Ty {
    /// A 64-bit integer (also used for pointers and booleans).
    Int,
    /// An IEEE-754 double.
    Float,
    /// No value (stores, markers, …).
    None,
}

/// A path into the run-time constants table (§3.2, §4).
///
/// The table is a statically sized array of 64-bit slots; slots that root an
/// unrolled loop hold a pointer to a chain of per-iteration records, each of
/// which ends in a `next` pointer. A path `[s]` names static slot `s`;
/// `[s, j]` names slot `j` of the *current* record of the loop chain rooted
/// at static slot `s`; `[s, j, k]` names slot `k` of the current record of
/// an inner loop whose chain is rooted at slot `j` of the outer record, and
/// so on. The paper writes these as `2` or `4:1`.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct SlotPath(pub Vec<u32>);

impl SlotPath {
    /// A path to static slot `s`.
    pub fn stat(s: u32) -> Self {
        SlotPath(vec![s])
    }

    /// Extend the path by a per-iteration record slot.
    pub fn child(&self, slot: u32) -> Self {
        let mut v = self.0.clone();
        v.push(slot);
        SlotPath(v)
    }

    /// Whether the path names a static (non-loop) slot.
    pub fn is_static(&self) -> bool {
        self.0.len() == 1
    }

    /// Loop nesting depth (0 for static slots).
    pub fn depth(&self) -> usize {
        self.0.len() - 1
    }

    /// The final slot index within its record (or the static array).
    pub fn leaf(&self) -> u32 {
        *self.0.last().expect("slot path never empty")
    }
}

impl fmt::Display for SlotPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for s in &self.0 {
            if !first {
                write!(f, ":")?;
            }
            write!(f, "{s}")?;
            first = false;
        }
        Ok(())
    }
}

/// Intrinsic functions known to the compiler.
///
/// §3.1 allows calls to "idempotent, side-effect-free, non-trapping"
/// functions to produce run-time constants; the pure intrinsics below
/// qualify. `Alloc` is the bump allocator used by generated set-up code and
/// by programs; it is *not* idempotent (like `malloc` in the paper).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Intrinsic {
    /// Bump-allocate `n` bytes in the VM heap; returns the address.
    Alloc,
    /// Integer maximum (pure).
    Max,
    /// Integer minimum (pure).
    Min,
    /// Integer absolute value (pure; wrapping at `i64::MIN`).
    Abs,
    /// Float square root (pure).
    Sqrt,
    /// Tier probe (compiler-internal, not user-callable): emitted before a
    /// dynamic region when the program is lowered with a tiered fallback
    /// copy. Its single argument is the function-local region index (a
    /// compile-time constant); its result selects between the specialized
    /// entry (non-zero) and the static fallback copy (zero). It is opaque
    /// to every optimization — never specializable, never folded — so the
    /// fallback copy survives to code generation, where the probe is
    /// materialized as the constant 1 and the run-time engine redirects
    /// control at the `EnterRegion` trap instead.
    TierProbe,
}

impl Intrinsic {
    /// Whether a call's result may be a run-time constant when its
    /// arguments are (§3.1's idempotent/side-effect-free/non-trapping test).
    pub fn is_specializable(self) -> bool {
        !matches!(self, Intrinsic::Alloc | Intrinsic::TierProbe)
    }

    /// Number of arguments.
    pub fn arity(self) -> usize {
        match self {
            Intrinsic::Alloc | Intrinsic::Abs | Intrinsic::Sqrt | Intrinsic::TierProbe => 1,
            Intrinsic::Max | Intrinsic::Min => 2,
        }
    }

    /// Result kind.
    pub fn result_ty(self) -> Ty {
        match self {
            Intrinsic::Sqrt => Ty::Float,
            _ => Ty::Int,
        }
    }

    /// Evaluate a pure intrinsic on constants. `None` for `Alloc` or on
    /// operand-kind mismatch.
    pub fn eval(self, args: &[Const]) -> Option<Const> {
        match self {
            Intrinsic::Alloc | Intrinsic::TierProbe => None,
            Intrinsic::Max => Some(Const::Int(args[0].as_int()?.max(args[1].as_int()?))),
            Intrinsic::Min => Some(Const::Int(args[0].as_int()?.min(args[1].as_int()?))),
            Intrinsic::Abs => Some(Const::Int(args[0].as_int()?.wrapping_abs())),
            Intrinsic::Sqrt => Some(Const::Float(args[0].as_float()?.sqrt())),
        }
    }

    /// The intrinsic's name in printed IR and in MiniC source.
    pub fn name(self) -> &'static str {
        match self {
            Intrinsic::Alloc => "alloc",
            Intrinsic::Max => "max",
            Intrinsic::Min => "min",
            Intrinsic::Abs => "abs",
            Intrinsic::Sqrt => "sqrt",
            Intrinsic::TierProbe => "tier_probe",
        }
    }
}

/// A single three-address instruction.
#[derive(Clone, Debug, PartialEq)]
pub enum InstKind {
    /// Materialize a compile-time constant.
    Const(Const),
    /// Copy a value.
    Copy(InstId),
    /// Unary operation.
    Un(UnOp, InstId),
    /// Binary operation.
    Bin(BinOp, InstId, InstId),
    /// Memory load. `dynamic` marks the paper's `dynamic*` annotation: the
    /// loaded value is never a run-time constant even if `addr` is.
    Load {
        /// Access width.
        size: MemSize,
        /// Extension of narrow loads.
        sign: Signedness,
        /// Address operand.
        addr: InstId,
        /// `dynamic*` annotation (§2).
        dynamic: bool,
        /// Whether the loaded value is a float (requires `size == B8`).
        float: bool,
    },
    /// Memory store.
    Store {
        /// Access width.
        size: MemSize,
        /// Address operand.
        addr: InstId,
        /// Value operand.
        val: InstId,
        /// Whether the stored value is a float.
        float: bool,
    },
    /// Call to another function in the module.
    Call {
        /// Callee.
        callee: FuncId,
        /// Argument values.
        args: Vec<InstId>,
    },
    /// Call to a compiler-known intrinsic.
    CallIntrinsic {
        /// Which intrinsic.
        which: Intrinsic,
        /// Argument values.
        args: Vec<InstId>,
    },
    /// SSA φ-instruction; one operand per predecessor block.
    Phi(Vec<(BlockId, InstId)>),
    /// Read a source variable (pre-SSA only).
    GetVar(VarId),
    /// Write a source variable (pre-SSA only).
    SetVar(VarId, InstId),
    /// The `n`th incoming function parameter (entry block only).
    Param(u32),
    /// Address of a module global.
    GlobalAddr(GlobalId),
    /// Address of a stack-allocated (frame) variable.
    FrameAddr(VarId),
    /// Template pseudo-instruction (§3.2): a hole to be patched with the
    /// run-time constant stored at `slot`. Produces that constant's value.
    Hole {
        /// Where the stitcher finds the value in the constants table.
        slot: SlotPath,
        /// Whether the patched value is a float (always via the linearized
        /// table, never an immediate).
        float: bool,
    },
    /// `cond != 0 ? if_true : if_false`, evaluated without control flow.
    /// Used by generated set-up code to select φ-values at constant merges
    /// from mutually exclusive arc conditions (§3.2).
    Select {
        /// The (integer, truthy) condition.
        cond: InstId,
        /// Value when non-zero.
        if_true: InstId,
        /// Value when zero.
        if_false: InstId,
    },
}

impl InstKind {
    /// Operand values of the instruction (not including block refs of φ).
    pub fn operands(&self) -> Vec<InstId> {
        match self {
            InstKind::Const(_)
            | InstKind::GetVar(_)
            | InstKind::Param(_)
            | InstKind::GlobalAddr(_)
            | InstKind::FrameAddr(_)
            | InstKind::Hole { .. } => vec![],
            InstKind::Copy(a) | InstKind::Un(_, a) | InstKind::SetVar(_, a) => vec![*a],
            InstKind::Bin(_, a, b) => vec![*a, *b],
            InstKind::Select {
                cond,
                if_true,
                if_false,
            } => vec![*cond, *if_true, *if_false],
            InstKind::Load { addr, .. } => vec![*addr],
            InstKind::Store { addr, val, .. } => vec![*addr, *val],
            InstKind::Call { args, .. } | InstKind::CallIntrinsic { args, .. } => args.clone(),
            InstKind::Phi(ins) => ins.iter().map(|(_, v)| *v).collect(),
        }
    }

    /// Replace every operand `v` by `f(v)`.
    pub fn map_operands(&mut self, mut f: impl FnMut(InstId) -> InstId) {
        match self {
            InstKind::Const(_)
            | InstKind::GetVar(_)
            | InstKind::Param(_)
            | InstKind::GlobalAddr(_)
            | InstKind::FrameAddr(_)
            | InstKind::Hole { .. } => {}
            InstKind::Copy(a) | InstKind::Un(_, a) | InstKind::SetVar(_, a) => *a = f(*a),
            InstKind::Bin(_, a, b) => {
                *a = f(*a);
                *b = f(*b);
            }
            InstKind::Select {
                cond,
                if_true,
                if_false,
            } => {
                *cond = f(*cond);
                *if_true = f(*if_true);
                *if_false = f(*if_false);
            }
            InstKind::Load { addr, .. } => *addr = f(*addr),
            InstKind::Store { addr, val, .. } => {
                *addr = f(*addr);
                *val = f(*val);
            }
            InstKind::Call { args, .. } | InstKind::CallIntrinsic { args, .. } => {
                for a in args {
                    *a = f(*a);
                }
            }
            InstKind::Phi(ins) => {
                for (_, v) in ins {
                    *v = f(*v);
                }
            }
        }
    }

    /// Whether the instruction produces a value.
    pub fn has_result(&self) -> bool {
        !matches!(self, InstKind::Store { .. } | InstKind::SetVar(..))
    }

    /// Whether the instruction has a side effect (and so must not be
    /// removed by dead-code elimination even if its result is unused).
    pub fn has_side_effect(&self) -> bool {
        match self {
            InstKind::Store { .. } | InstKind::Call { .. } | InstKind::SetVar(..) => true,
            InstKind::CallIntrinsic { which, .. } => !which.is_specializable(),
            _ => false,
        }
    }

    /// Whether re-executing the instruction yields the same result and no
    /// side effect — the paper's test for run-time-constant candidacy.
    /// Loads are handled separately (constant iff the address is constant
    /// and the load is not annotated `dynamic`).
    ///
    /// `FrameAddr` is *not* specializable: a run-time constant must stay
    /// fixed across all future executions of the region, but a frame
    /// address changes with the stack pointer on every call. `Param` is
    /// likewise non-constant unless the programmer annotates it.
    pub fn is_specializable_op(&self) -> bool {
        match self {
            InstKind::Const(_)
            | InstKind::Copy(_)
            | InstKind::GlobalAddr(_)
            | InstKind::Hole { .. } => true,
            InstKind::Select { .. } => true,
            InstKind::Un(op, _) => op.is_specializable(),
            InstKind::Bin(op, ..) => op.is_specializable(),
            InstKind::CallIntrinsic { which, .. } => which.is_specializable(),
            _ => false,
        }
    }
}

/// Block terminator.
#[derive(Clone, Debug, PartialEq)]
pub enum Terminator {
    /// Unconditional jump.
    Jump(BlockId),
    /// Two-way branch on a (truthy) condition value.
    Branch {
        /// Condition value.
        cond: InstId,
        /// Successor when the condition is non-zero.
        then_b: BlockId,
        /// Successor when the condition is zero.
        else_b: BlockId,
    },
    /// N-way switch on an integer value, with fall-back default.
    Switch {
        /// Scrutinee value.
        val: InstId,
        /// `(case value, target)` pairs.
        cases: Vec<(i64, BlockId)>,
        /// Target when no case matches.
        default: BlockId,
    },
    /// Function return.
    Return(Option<InstId>),
    /// Template pseudo-terminator (§3.2/§4): a branch whose predicate is a
    /// run-time constant stored at `slot`. Emits no code; the stitcher reads
    /// the predicate and follows exactly one successor, performing dead-code
    /// elimination of the other.
    ConstBranch {
        /// Table location of the predicate value.
        slot: SlotPath,
        /// Successor when the stored predicate is non-zero.
        then_b: BlockId,
        /// Successor when zero.
        else_b: BlockId,
    },
    /// Template pseudo-terminator: an n-way switch on a run-time constant.
    ConstSwitch {
        /// Table location of the scrutinee value.
        slot: SlotPath,
        /// `(case value, target)` pairs.
        cases: Vec<(i64, BlockId)>,
        /// Target when no case matches.
        default: BlockId,
    },
    /// Transfer to the dynamic-compilation runtime at a dynamic region's
    /// entry (replaces the region body in the residual function). The single
    /// successor is the region's set-up code; at run time, control proceeds
    /// to the set-up code on first execution and to stitched code afterward.
    EnterRegion {
        /// Which region.
        region: RegionId,
        /// The set-up subgraph's entry block.
        setup: BlockId,
    },
    /// End of a region's set-up code: hand the filled constants table to the
    /// stitcher. The single successor is the template subgraph's entry
    /// (control proceeds to the freshly stitched copy of it at run time).
    EndSetup {
        /// Which region.
        region: RegionId,
        /// The constants-table base address value.
        table: InstId,
        /// The template subgraph's entry block.
        template: BlockId,
    },
    /// No successors and never executed (placeholder during construction).
    Unreachable,
}

impl Terminator {
    /// Successor blocks, in order.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Terminator::Jump(b) => vec![*b],
            Terminator::Branch { then_b, else_b, .. }
            | Terminator::ConstBranch { then_b, else_b, .. } => vec![*then_b, *else_b],
            Terminator::Switch { cases, default, .. }
            | Terminator::ConstSwitch { cases, default, .. } => {
                let mut v: Vec<BlockId> = cases.iter().map(|(_, b)| *b).collect();
                v.push(*default);
                v
            }
            Terminator::Return(_) | Terminator::Unreachable => vec![],
            Terminator::EnterRegion { setup, .. } => vec![*setup],
            Terminator::EndSetup { template, .. } => vec![*template],
        }
    }

    /// Replace every successor `b` with `f(b)`.
    pub fn map_successors(&mut self, mut f: impl FnMut(BlockId) -> BlockId) {
        match self {
            Terminator::Jump(b) => *b = f(*b),
            Terminator::Branch { then_b, else_b, .. }
            | Terminator::ConstBranch { then_b, else_b, .. } => {
                *then_b = f(*then_b);
                *else_b = f(*else_b);
            }
            Terminator::Switch { cases, default, .. }
            | Terminator::ConstSwitch { cases, default, .. } => {
                for (_, b) in cases {
                    *b = f(*b);
                }
                *default = f(*default);
            }
            Terminator::Return(_) | Terminator::Unreachable => {}
            Terminator::EnterRegion { setup, .. } => *setup = f(*setup),
            Terminator::EndSetup { template, .. } => *template = f(*template),
        }
    }

    /// Value operands of the terminator.
    pub fn operands(&self) -> Vec<InstId> {
        match self {
            Terminator::Branch { cond, .. } => vec![*cond],
            Terminator::Switch { val, .. } => vec![*val],
            Terminator::Return(Some(v)) => vec![*v],
            Terminator::EndSetup { table, .. } => vec![*table],
            _ => vec![],
        }
    }

    /// Replace every value operand `v` with `f(v)`.
    pub fn map_operands(&mut self, mut f: impl FnMut(InstId) -> InstId) {
        match self {
            Terminator::Branch { cond, .. } => *cond = f(*cond),
            Terminator::Switch { val, .. } => *val = f(*val),
            Terminator::Return(Some(v)) => *v = f(*v),
            Terminator::EndSetup { table, .. } => *table = f(*table),
            _ => {}
        }
    }
}

/// Marker attached to blocks the specializer inserts on unrolled-loop arcs
/// (the paper's "marker pseudo-instructions" of §3.2, which become the
/// `ENTER_LOOP` / `RESTART_LOOP` / `EXIT_LOOP` directives of Table 1).
#[derive(Clone, Debug, PartialEq)]
pub enum TemplateMarker {
    /// Entry arc of an unrolled loop: begin reading per-iteration records
    /// from the chain rooted at `root`.
    EnterLoop {
        /// Table path of the chain-head slot.
        root: SlotPath,
    },
    /// Back-edge arc: advance to the next per-iteration record, found at
    /// slot `next_slot` of the current record.
    RestartLoop {
        /// Slot index of the `next` pointer within the record.
        next_slot: u32,
    },
    /// Exit arc: stop unrolling the innermost active loop.
    ExitLoop,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_path_display_matches_paper_syntax() {
        assert_eq!(SlotPath::stat(2).to_string(), "2");
        assert_eq!(SlotPath::stat(4).child(1).to_string(), "4:1");
        assert!(SlotPath::stat(4).is_static());
        assert!(!SlotPath::stat(4).child(1).is_static());
        assert_eq!(SlotPath::stat(4).child(1).leaf(), 1);
        assert_eq!(SlotPath::stat(4).child(1).depth(), 1);
    }

    #[test]
    fn operands_roundtrip_through_map() {
        let mut k = InstKind::Bin(BinOp::Add, InstId(1), InstId(2));
        k.map_operands(|v| InstId(v.0 + 10));
        assert_eq!(k.operands(), vec![InstId(11), InstId(12)]);
    }

    #[test]
    fn phi_operands() {
        let k = InstKind::Phi(vec![(BlockId(0), InstId(1)), (BlockId(1), InstId(2))]);
        assert_eq!(k.operands(), vec![InstId(1), InstId(2)]);
        assert!(k.has_result());
        assert!(!k.has_side_effect());
    }

    #[test]
    fn terminator_successors() {
        let t = Terminator::Switch {
            val: InstId(0),
            cases: vec![(1, BlockId(1)), (2, BlockId(2))],
            default: BlockId(3),
        };
        assert_eq!(t.successors(), vec![BlockId(1), BlockId(2), BlockId(3)]);
        let t = Terminator::Return(None);
        assert!(t.successors().is_empty());
    }

    #[test]
    fn intrinsic_specializability_matches_paper() {
        // §3.1: "malloc is excluded, since it is not idempotent"; max is in.
        assert!(!Intrinsic::Alloc.is_specializable());
        assert!(Intrinsic::Max.is_specializable());
        assert_eq!(
            Intrinsic::Max.eval(&[Const::Int(3), Const::Int(7)]),
            Some(Const::Int(7))
        );
        assert_eq!(Intrinsic::Alloc.eval(&[Const::Int(8)]), None);
    }

    #[test]
    fn store_has_side_effect_and_no_result() {
        let k = InstKind::Store {
            size: MemSize::B8,
            addr: InstId(0),
            val: InstId(1),
            float: false,
        };
        assert!(k.has_side_effect());
        assert!(!k.has_result());
    }
}
