//! SSA-preserving call inlining: the clone/rename transform behind
//! demand-driven cross-function dynamic regions.
//!
//! The paper's dynamic regions stop at call boundaries: `InstKind::Call`
//! is opaque to the run-time-constants analysis, so helpers invoked from
//! inside a region defeat specialization. Following Way & Pollock
//! ("Demand-driven Inlining in a Region-based Optimizer"), the optimizer
//! pulls a callee body *into* the caller only where region analysis
//! demands it. This module provides the mechanical half of that pass: a
//! verified, SSA-preserving [`inline_call`] transform that clones and
//! renames a callee body at one call site. Policy (which sites, budgets,
//! fixpoint iteration) lives in the driver (`dyncomp::Compiler`).

use crate::cfg;
use crate::func::{Function, InstData};
use crate::ids::{BlockId, InstId, VarId};
use crate::inst::{InstKind, Terminator, Ty};
use crate::ops::Const;
use std::fmt;

/// Why a call site could not be inlined.
///
/// These are *refusals*, not corruption: when `inline_call` returns an
/// error before touching the caller the function is unchanged, and the
/// driver simply leaves the call in place. (Errors raised after cloning
/// begins indicate a malformed callee and poison the caller; the driver
/// must treat them as fatal. All such cases are unreachable for callees
/// that pass [`crate::verify::verify`].)
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InlineError(pub String);

impl fmt::Display for InlineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "inline failed: {}", self.0)
    }
}

impl std::error::Error for InlineError {}

/// What [`inline_call`] did, for logging, budgets and region bookkeeping.
#[derive(Debug, Clone)]
pub struct InlinedCall {
    /// The cloned copy of the callee's entry block (the call block now
    /// jumps here).
    pub entry: BlockId,
    /// The continuation block holding the rewritten call result and the
    /// call block's original suffix + terminator.
    pub cont: BlockId,
    /// Every block added to the caller (cloned callee blocks + `cont`).
    pub new_blocks: Vec<BlockId>,
    /// Number of instructions cloned from the callee.
    pub cloned_insts: usize,
}

/// Inline `callee`'s body at `call_inst` (which must be a
/// [`InstKind::Call`] placed in `call_block` of `f`), preserving SSA form.
///
/// The transform:
/// 1. splits `call_block` at the call site — the suffix and original
///    terminator move to a fresh continuation block, with φ-operands in
///    the old successors retargeted;
/// 2. clones every reachable callee block into `f` (instructions, frame
///    variables, terminators), renaming all ids; `Param(i)` becomes a
///    `Copy` of the i-th argument; `Return` becomes a jump to the
///    continuation;
/// 3. rewrites `call_inst` *in place* (keeping its `InstId`, so existing
///    uses stay valid) into a `Copy`/`Phi` of the returned value(s), and
///    moves it to the head of the continuation block;
/// 4. adds every new block to each [`crate::DynRegion`] containing
///    `call_block`, mirroring what `split_critical_edges` does for split
///    blocks.
///
/// The caller's region roots, `unrolled` annotations and the callee's own
/// `unrolled` headers all survive, so run-time-constants analysis re-run
/// after inlining flows straight through the cloned body.
///
/// # Errors
/// Refuses (leaving `f` untouched): non-SSA caller or callee, a callee
/// with dynamic regions or template pseudo-ops, a callee whose entry has
/// predecessors, argument/parameter count mismatch, or a `call_inst` that
/// is not a call placed in `call_block`.
pub fn inline_call(
    f: &mut Function,
    call_block: BlockId,
    call_inst: InstId,
    callee: &Function,
) -> Result<InlinedCall, InlineError> {
    let refuse = |m: String| Err(InlineError(m));

    if !f.is_ssa || !callee.is_ssa {
        return refuse(format!(
            "`{}` <- `{}`: both functions must be in SSA form",
            f.name, callee.name
        ));
    }
    if !callee.regions.is_empty() {
        return refuse(format!(
            "`{}` contains dynamic regions and cannot be inlined",
            callee.name
        ));
    }
    let args: Vec<InstId> = match f.kind(call_inst) {
        InstKind::Call { args, .. } => args.clone(),
        other => {
            return refuse(format!(
                "`{}`: {call_inst} is not a call (found {other:?})",
                f.name
            ))
        }
    };
    if args.len() != callee.params.len() {
        return refuse(format!(
            "`{}` <- `{}`: {} arguments for {} parameters",
            f.name,
            callee.name,
            args.len(),
            callee.params.len()
        ));
    }
    let Some(pos) = f.blocks[call_block]
        .insts
        .iter()
        .position(|&i| i == call_inst)
    else {
        return refuse(format!(
            "`{}`: {call_inst} is not placed in {call_block}",
            f.name
        ));
    };
    // A callee entry with predecessors (a loop straight back to function
    // entry) would need a φ-aware pre-header; the front end never emits
    // this shape, so refuse rather than complicate the clone.
    for blk in callee.blocks.iter() {
        if blk.term.successors().contains(&callee.entry) {
            return refuse(format!("`{}`: entry block has predecessors", callee.name));
        }
    }
    let order = cfg::reverse_postorder(callee);
    for &b in &order {
        for &i in &callee.blocks[b].insts {
            if matches!(callee.kind(i), InstKind::Hole { .. }) {
                return refuse(format!("`{}` contains template holes", callee.name));
            }
        }
        if matches!(
            callee.blocks[b].term,
            Terminator::ConstBranch { .. }
                | Terminator::ConstSwitch { .. }
                | Terminator::EnterRegion { .. }
                | Terminator::EndSetup { .. }
        ) {
            return refuse(format!(
                "`{}` contains template pseudo-terminators",
                callee.name
            ));
        }
    }

    // --- Point of no return: all checks passed, start mutating `f`. ---

    // 1. Split the call block. Everything after the call (all non-φ, by
    // the φ-prefix invariant) plus the original terminator moves to a
    // fresh continuation block.
    let cont = f.add_block();
    let suffix = f.blocks[call_block].insts.split_off(pos + 1);
    f.blocks[call_block].insts.pop(); // the call itself; re-placed below
    f.blocks[cont].insts = suffix;
    f.blocks[cont].term =
        std::mem::replace(&mut f.blocks[call_block].term, Terminator::Unreachable);
    // φ-operands in the original successors now flow in via `cont`.
    for s in f.blocks[cont].term.successors() {
        for ii in 0..f.blocks[s].insts.len() {
            let i = f.blocks[s].insts[ii];
            if let InstKind::Phi(ins) = &mut f.insts[i].kind {
                for (p, _) in ins.iter_mut() {
                    if *p == call_block {
                        *p = cont;
                    }
                }
            } else {
                break;
            }
        }
    }

    // 2a. Clone blocks (flags now; contents in the passes below).
    let mut block_map: Vec<Option<BlockId>> = vec![None; callee.blocks.len()];
    let mut new_blocks = Vec::with_capacity(order.len() + 1);
    for &b in &order {
        let nb = f.add_block();
        f.blocks[nb].unrolled_header = callee.blocks[b].unrolled_header;
        f.blocks[nb].marker = callee.blocks[b].marker.clone();
        block_map[b.index()] = Some(nb);
        new_blocks.push(nb);
    }
    let entry = block_map[callee.entry.index()].expect("entry is reachable");

    // 2b. First instruction pass: allocate caller ids for every cloned
    // instruction (operands still name callee ids — fixed in pass 2c, so
    // back-edge φ operands resolve).
    let mut inst_map: Vec<Option<InstId>> = vec![None; callee.insts.len()];
    let mut cloned_insts = 0usize;
    for &b in &order {
        let nb = block_map[b.index()].unwrap();
        for &i in &callee.blocks[b].insts {
            let ni = f.insts.push(InstData {
                kind: callee.insts[i].kind.clone(),
                ty: callee.insts[i].ty,
            });
            f.blocks[nb].insts.push(ni);
            inst_map[i.index()] = Some(ni);
            cloned_insts += 1;
        }
    }

    // 2c. Second pass: rename. The callee is verified, so every operand
    // of a reachable instruction is defined in a reachable block.
    let mut var_map: Vec<Option<VarId>> = vec![None; callee.vars.len()];
    let mut rets: Vec<(BlockId, Option<InstId>)> = Vec::new();
    for &b in &order {
        let nb = block_map[b.index()].unwrap();
        for ii in 0..f.blocks[nb].insts.len() {
            let ni = f.blocks[nb].insts[ii];
            let mut kind = f.insts[ni].kind.clone();
            match &mut kind {
                InstKind::Param(i) => {
                    // Arguments were computed in the caller before the
                    // call block, so they dominate every cloned block.
                    kind = InstKind::Copy(args[*i as usize]);
                }
                InstKind::Phi(ins) => {
                    for (p, v) in ins.iter_mut() {
                        *p = block_map[p.index()].expect("φ pred reachable in callee");
                        *v = inst_map[v.index()].expect("φ operand defined in callee");
                    }
                }
                InstKind::GetVar(v) | InstKind::SetVar(v, _) | InstKind::FrameAddr(v) => {
                    let nv = *var_map[v.index()]
                        .get_or_insert_with(|| f.vars.push(callee.vars[*v].clone()));
                    match &mut kind {
                        InstKind::GetVar(v) | InstKind::SetVar(v, _) | InstKind::FrameAddr(v) => {
                            *v = nv
                        }
                        _ => unreachable!(),
                    }
                    kind.map_operands(|v| inst_map[v.index()].expect("operand defined in callee"));
                }
                _ => {
                    kind.map_operands(|v| inst_map[v.index()].expect("operand defined in callee"));
                }
            }
            f.insts[ni].kind = kind;
        }
        // Terminator: returns become jumps to the continuation.
        let mut term = callee.blocks[b].term.clone();
        match term {
            Terminator::Return(v) => {
                rets.push((
                    nb,
                    v.map(|v| inst_map[v.index()].expect("return value defined in callee")),
                ));
                term = Terminator::Jump(cont);
            }
            _ => {
                term.map_successors(|s| block_map[s.index()].expect("successor reachable"));
                term.map_operands(|v| inst_map[v.index()].expect("operand defined in callee"));
            }
        }
        f.blocks[nb].term = term;
    }

    // 3. Rewrite the call instruction in place as the join of the
    // returned values, keeping its InstId so existing uses stay valid.
    let call_ty = f.ty(call_inst);
    let mut incoming: Vec<(BlockId, InstId)> = Vec::with_capacity(rets.len());
    for (rb, v) in &rets {
        let v = match v {
            Some(v) => *v,
            None => {
                if call_ty == Ty::None {
                    continue;
                }
                // A bare `return;` reaching a value-typed call: feed a
                // typed zero so the φ stays well-formed.
                let zero = if call_ty == Ty::Float {
                    Const::Float(0.0)
                } else {
                    Const::Int(0)
                };
                f.append(*rb, InstKind::Const(zero))
            }
        };
        incoming.push((*rb, v));
    }
    let joined = match incoming.len() {
        0 => InstKind::Const(Const::Int(0)), // void or no-return callee
        1 => InstKind::Copy(incoming[0].1),
        _ => InstKind::Phi(incoming),
    };
    f.insts[call_inst].kind = joined; // ty intentionally preserved
    f.blocks[cont].insts.insert(0, call_inst);

    // 4. Wire the call block into the clone and extend region membership,
    // the same way `split_critical_edges` adopts its split blocks.
    f.blocks[call_block].term = Terminator::Jump(entry);
    new_blocks.push(cont);
    for r in f.regions.iter_mut() {
        if r.blocks.contains(call_block) {
            for &nb in &new_blocks {
                r.blocks.insert(nb);
            }
        }
    }

    Ok(InlinedCall {
        entry,
        cont,
        new_blocks,
        cloned_insts,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::func::Module;
    use crate::ops::BinOp;
    use crate::ssa::construct_ssa;
    use crate::verify::verify;
    use crate::FuncId;

    fn callee_mul_add() -> Function {
        // fn helper(a, b) { return a * b + 3 }
        let mut h = Function::new("helper", vec![Ty::Int, Ty::Int], Ty::Int);
        let e = h.entry;
        let a = h.append(e, InstKind::Param(0));
        let b = h.append(e, InstKind::Param(1));
        let c3 = h.const_int(e, 3);
        let m = h.bin(e, BinOp::Mul, a, b);
        let s = h.bin(e, BinOp::Add, m, c3);
        h.blocks[e].term = Terminator::Return(Some(s));
        construct_ssa(&mut h);
        verify(&h).unwrap();
        h
    }

    fn caller_of(callee_id: FuncId) -> (Function, BlockId, InstId) {
        // fn main(x) { return helper(x, 7) + 1 }
        let mut f = Function::new("main", vec![Ty::Int], Ty::Int);
        let e = f.entry;
        let x = f.append(e, InstKind::Param(0));
        let c7 = f.const_int(e, 7);
        let call = f.append(
            e,
            InstKind::Call {
                callee: callee_id,
                args: vec![x, c7],
            },
        );
        let one = f.const_int(e, 1);
        let r = f.bin(e, BinOp::Add, call, one);
        f.blocks[e].term = Terminator::Return(Some(r));
        construct_ssa(&mut f);
        verify(&f).unwrap();
        (f, e, call)
    }

    #[test]
    fn straight_line_inline_verifies_and_evaluates() {
        let h = callee_mul_add();
        let (mut f, e, call) = caller_of(FuncId::from_index(1));
        let done = inline_call(&mut f, e, call, &h).unwrap();
        assert!(done.cloned_insts >= 5);
        verify(&f).unwrap();
        // No calls remain.
        for (_, blk) in f.iter_blocks() {
            for &i in &blk.insts {
                assert!(!matches!(f.kind(i), InstKind::Call { .. }));
            }
        }
        let mut m = Module::new();
        let fid = m.funcs.push(f);
        m.funcs.push(h);
        let mut ev = crate::eval::Evaluator::new(&m);
        // helper(5, 7) + 1 = 5*7+3+1 = 39
        let out = ev.call(fid, &[5]).unwrap();
        assert_eq!(out, crate::eval::EvalOutcome::Return(Some(39)));
    }

    #[test]
    fn branchy_callee_produces_phi_join() {
        // fn pick(c) { if (c) return 10; else return 20; }
        let mut h = Function::new("pick", vec![Ty::Int], Ty::Int);
        let e = h.entry;
        let t = h.add_block();
        let el = h.add_block();
        let c = h.append(e, InstKind::Param(0));
        h.blocks[e].term = Terminator::Branch {
            cond: c,
            then_b: t,
            else_b: el,
        };
        let v10 = h.const_int(t, 10);
        h.blocks[t].term = Terminator::Return(Some(v10));
        let v20 = h.const_int(el, 20);
        h.blocks[el].term = Terminator::Return(Some(v20));
        construct_ssa(&mut h);
        verify(&h).unwrap();

        let mut f = Function::new("main", vec![Ty::Int], Ty::Int);
        let e = f.entry;
        let x = f.append(e, InstKind::Param(0));
        let call = f.append(
            e,
            InstKind::Call {
                callee: FuncId::from_index(1),
                args: vec![x],
            },
        );
        f.blocks[e].term = Terminator::Return(Some(call));
        construct_ssa(&mut f);

        let done = inline_call(&mut f, e, call, &h).unwrap();
        verify(&f).unwrap();
        assert!(matches!(f.kind(call), InstKind::Phi(ins) if ins.len() == 2));
        assert_eq!(f.blocks[done.cont].insts[0], call);

        let mut m = Module::new();
        let fid = m.funcs.push(f);
        m.funcs.push(h);
        let mut ev = crate::eval::Evaluator::new(&m);
        assert_eq!(
            ev.call(fid, &[1]).unwrap(),
            crate::eval::EvalOutcome::Return(Some(10))
        );
        let mut ev = crate::eval::Evaluator::new(&m);
        assert_eq!(
            ev.call(fid, &[0]).unwrap(),
            crate::eval::EvalOutcome::Return(Some(20))
        );
    }

    #[test]
    fn inline_inside_region_extends_membership() {
        let h = callee_mul_add();
        let (mut f, e, call) = caller_of(FuncId::from_index(1));
        // Pretend the whole entry block is a region body.
        let mut blocks = crate::IdSet::new();
        blocks.insert(e);
        let root = f.blocks[e].insts[0];
        f.regions.push(crate::DynRegion {
            entry: e,
            blocks,
            const_roots: vec![root],
            key_roots: vec![],
        });
        let done = inline_call(&mut f, e, call, &h).unwrap();
        verify(&f).unwrap();
        let r = &f.regions[crate::RegionId::from_index(0)];
        for nb in &done.new_blocks {
            assert!(r.blocks.contains(*nb), "region must adopt {nb}");
        }
    }

    #[test]
    fn refuses_arity_mismatch_and_regions() {
        let mut h = callee_mul_add();
        let (mut f, e, call) = caller_of(FuncId::from_index(1));
        // Wrong arity.
        let mut h1 = h.clone();
        h1.params.push(Ty::Int);
        let err = inline_call(&mut f, e, call, &h1).unwrap_err();
        assert!(err.0.contains("parameters"), "{err}");
        // Callee with a region.
        h.regions.push(crate::DynRegion {
            entry: h.entry,
            blocks: crate::IdSet::new(),
            const_roots: vec![],
            key_roots: vec![],
        });
        let err = inline_call(&mut f, e, call, &h).unwrap_err();
        assert!(err.0.contains("dynamic regions"), "{err}");
        verify(&f).unwrap(); // caller untouched by refusals
    }
}
