//! # dyncomp-ir
//!
//! Three-address-code IR over explicit control-flow graphs, with SSA, for
//! the `dyncomp` dynamic compilation system — a reproduction of
//! *Auslander, Philipose, Chambers, Eggers & Bershad, "Fast, Effective
//! Dynamic Compilation", PLDI 1996*.
//!
//! The paper deliberately works at "the lower but more general level of
//! control flow graphs connecting three-address code" rather than syntax
//! trees (§3), so that unstructured C control flow (`switch` fall-through,
//! `goto`, multi-level exits) is handled uniformly. This crate provides
//! that substrate:
//!
//! * [`Function`] / [`Module`] — CFGs of [`Block`]s over a pool of
//!   [`InstKind`] instructions; instructions double as SSA value names.
//! * [`ssa::construct_ssa`] / [`out_of_ssa::destruct_ssa`] — conversion in
//!   and out of SSA form (the analyses assume SSA, per the paper).
//! * [`dom`] / [`loops`] / [`mod@cfg`] — dominators, natural loops,
//!   reducibility checking and CFG utilities.
//! * [`eval::Evaluator`] — a reference interpreter that also executes
//!   *specialized* IR (set-up code, constants-table holes, constant
//!   branches, unrolled-loop markers), defining the semantics the
//!   run-time stitcher must reproduce.
//! * Dynamic-region metadata ([`DynRegion`]) and the template
//!   pseudo-instructions of §3.2 ([`InstKind::Hole`],
//!   [`Terminator::ConstBranch`], [`TemplateMarker`]).
//!
//! ## Example
//!
//! ```
//! use dyncomp_ir::{Function, InstKind, Terminator, Ty, BinOp};
//!
//! // fn double_plus_one(x) { return x * 2 + 1 }
//! let mut f = Function::new("double_plus_one", vec![Ty::Int], Ty::Int);
//! let entry = f.entry;
//! let x = f.append(entry, InstKind::Param(0));
//! let two = f.const_int(entry, 2);
//! let one = f.const_int(entry, 1);
//! let d = f.bin(entry, BinOp::Mul, x, two);
//! let r = f.bin(entry, BinOp::Add, d, one);
//! f.blocks[entry].term = Terminator::Return(Some(r));
//!
//! dyncomp_ir::ssa::construct_ssa(&mut f);
//! dyncomp_ir::verify::verify(&f).unwrap();
//!
//! let mut m = dyncomp_ir::Module::new();
//! let fid = m.funcs.push(f);
//! let mut ev = dyncomp_ir::eval::Evaluator::new(&m);
//! let out = ev.call(fid, &[20]).unwrap();
//! assert_eq!(out, dyncomp_ir::eval::EvalOutcome::Return(Some(41)));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cfg;
pub mod dom;
pub mod eval;
pub mod func;
pub mod fxhash;
pub mod ids;
pub mod inline;
pub mod inst;
pub mod loops;
pub mod ops;
pub mod out_of_ssa;
pub mod print;
pub mod prng;
pub mod ssa;
pub mod verify;

pub use func::{Block, DynRegion, Function, Global, InstData, Module, VarInfo};
pub use ids::{BlockId, FuncId, GlobalId, IdSet, IndexVec, InstId, RegionId, VarId};
pub use inline::{inline_call, InlineError, InlinedCall};
pub use inst::{InstKind, Intrinsic, SlotPath, TemplateMarker, Terminator, Ty};
pub use ops::{BinOp, Const, MemSize, Signedness, UnOp};
