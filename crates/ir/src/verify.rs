//! The IR verifier: structural well-formedness checks run between passes.

use crate::cfg::Preds;
use crate::dom::DomTree;
use crate::func::{Function, Module};
use crate::ids::{BlockId, IdSet, IndexVec, InstId};
use crate::inst::{InstKind, Terminator};
use std::fmt;

/// A verification failure, with enough context to locate it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError(pub String);

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "IR verification failed: {}", self.0)
    }
}

impl std::error::Error for VerifyError {}

/// Check structural invariants of `f`:
///
/// * every placed instruction appears in exactly one block;
/// * terminator targets are valid blocks;
/// * operands refer to placed instructions;
/// * in SSA functions: no `GetVar`/`SetVar` (for renameable variables),
///   φ-operand predecessor lists match actual predecessors, and
///   definitions dominate uses (φ uses checked at the predecessor);
/// * φ-instructions appear only at the start of their block.
///
/// # Errors
/// Returns the first violation found.
pub fn verify(f: &Function) -> Result<(), VerifyError> {
    let err = |m: String| Err(VerifyError(format!("{}: {m}", f.name)));

    // Placement map.
    let mut place: IndexVec<InstId, Option<BlockId>> = (0..f.insts.len()).map(|_| None).collect();
    for (b, blk) in f.iter_blocks() {
        let mut seen_non_phi = false;
        for &i in &blk.insts {
            if i.index() >= f.insts.len() {
                return err(format!("block {b} references nonexistent inst {i}"));
            }
            if let Some(prev) = place[i] {
                return err(format!("inst {i} placed in both {prev} and {b}"));
            }
            place[i] = Some(b);
            if matches!(f.kind(i), InstKind::Phi(_)) {
                if seen_non_phi {
                    return err(format!("φ {i} not at start of block {b}"));
                }
            } else {
                seen_non_phi = true;
            }
        }
        for s in blk.term.successors() {
            if s.index() >= f.blocks.len() {
                return err(format!("block {b} targets nonexistent block {s}"));
            }
        }
    }

    if f.entry.index() >= f.blocks.len() {
        return err("entry block out of range".into());
    }

    // Dynamic-region metadata. Transforms that add blocks inside a region
    // (edge splitting, inlining) must keep the membership set and roots
    // coherent; a dangling block or an un-renamed root value here would
    // otherwise only surface at stitch time.
    for (rid, r) in f.regions.iter_enumerated() {
        if r.entry.index() >= f.blocks.len() {
            return err(format!("region {rid} entry {} out of range", r.entry));
        }
        for b in r.blocks.iter() {
            if b.index() >= f.blocks.len() {
                return err(format!("region {rid} contains nonexistent block {b}"));
            }
        }
        // Roots must be real values; before specialization rewrites the
        // region they must also be placed (specialized regions start with
        // an `EnterRegion` terminator at their entry).
        let specialized = matches!(
            f.blocks[r.entry].term,
            Terminator::EnterRegion { .. } | Terminator::EndSetup { .. }
        );
        for &v in r.const_roots.iter().chain(r.key_roots.iter()) {
            if v.index() >= f.insts.len() {
                return err(format!("region {rid} root {v} does not exist"));
            }
            if !specialized && place[v].is_none() {
                return err(format!("region {rid} root {v} is not placed"));
            }
        }
    }

    // Operands must be placed instructions (in reachable code).
    let live = crate::cfg::reachable(f);
    let check_op = |user: String, v: InstId| -> Result<(), VerifyError> {
        if v.index() >= f.insts.len() {
            return Err(VerifyError(format!(
                "{}: {user} uses nonexistent value {v}",
                f.name
            )));
        }
        if place[v].is_none() {
            return Err(VerifyError(format!(
                "{}: {user} uses unplaced value {v}",
                f.name
            )));
        }
        if !f.kind(v).has_result() {
            return Err(VerifyError(format!(
                "{}: {user} uses value of result-less inst {v}",
                f.name
            )));
        }
        Ok(())
    };
    for (b, blk) in f.iter_blocks() {
        if !live.contains(b) {
            continue;
        }
        for &i in &blk.insts {
            for v in f.kind(i).operands() {
                check_op(format!("inst {i} in {b}"), v)?;
            }
        }
        for v in blk.term.operands() {
            check_op(format!("terminator of {b}"), v)?;
        }
    }

    if f.is_ssa {
        verify_ssa(f, &place, &live)?;
    }

    Ok(())
}

/// Check cross-function invariants of `m`, then [`verify`] each function:
///
/// * every `Call` names an existing function;
/// * argument count matches the callee's parameter count;
/// * the call's result kind matches the callee's return kind (i.e.
///   [`Module::retype_calls`] has been run and later transforms — inlining
///   in particular — kept it consistent).
///
/// # Errors
/// Returns the first violation found.
pub fn verify_module(m: &Module) -> Result<(), VerifyError> {
    for (fid, f) in m.funcs.iter_enumerated() {
        for (b, blk) in f.iter_blocks() {
            for &i in &blk.insts {
                let InstKind::Call { callee, args } = f.kind(i) else {
                    continue;
                };
                let err =
                    |msg: String| Err(VerifyError(format!("{}: call {i} in {b}: {msg}", f.name)));
                let Some(target) = m.funcs.get(*callee) else {
                    return err(format!("callee {callee:?} does not exist"));
                };
                if args.len() != target.params.len() {
                    return err(format!(
                        "`{}` expects {} arguments, got {}",
                        target.name,
                        target.params.len(),
                        args.len()
                    ));
                }
                if f.ty(i) != target.ret_ty {
                    return err(format!(
                        "result kind {:?} disagrees with `{}` returning {:?} \
                         (missing `retype_calls`?)",
                        f.ty(i),
                        target.name,
                        target.ret_ty
                    ));
                }
            }
        }
        verify(f).map_err(|e| VerifyError(format!("fn {fid}: {}", e.0)))?;
    }
    Ok(())
}

fn verify_ssa(
    f: &Function,
    place: &IndexVec<InstId, Option<BlockId>>,
    live: &IdSet<BlockId>,
) -> Result<(), VerifyError> {
    let err = |m: String| Err(VerifyError(format!("{}: {m}", f.name)));
    let preds = Preds::compute(f);
    let dom = DomTree::compute(f);

    for (b, blk) in f.iter_blocks() {
        if !live.contains(b) {
            continue;
        }
        for (pos, &i) in blk.insts.iter().enumerate() {
            match f.kind(i) {
                InstKind::GetVar(v) | InstKind::SetVar(v, _) => {
                    if f.vars[*v].frame_size.is_none() {
                        return err(format!("SSA function contains variable access {i}"));
                    }
                }
                InstKind::Phi(ins) => {
                    let mut ps: Vec<BlockId> = preds.of(b).to_vec();
                    ps.sort();
                    let mut got: Vec<BlockId> = ins.iter().map(|(p, _)| *p).collect();
                    got.sort();
                    got.dedup();
                    if got.len() != ins.len() {
                        return err(format!("φ {i} has duplicate predecessor operands"));
                    }
                    // Every operand must name an actual predecessor; every
                    // reachable predecessor must be covered.
                    for (p, _) in ins {
                        if !ps.contains(p) {
                            return err(format!("φ {i} names non-predecessor {p}"));
                        }
                    }
                    for p in &ps {
                        if live.contains(*p) && !got.contains(p) {
                            return err(format!("φ {i} missing operand for predecessor {p}"));
                        }
                    }
                    // φ uses must dominate the predecessor end.
                    for (p, v) in ins {
                        if !live.contains(*p) {
                            continue;
                        }
                        let db = place[*v].expect("checked placed");
                        if !dom.dominates(db, *p) {
                            return err(format!(
                                "φ {i} operand {v} (defined in {db}) does not dominate pred {p}"
                            ));
                        }
                    }
                }
                _ => {
                    // Non-φ uses: definition must dominate the use point.
                    for v in f.kind(i).operands() {
                        let db = place[v].expect("checked placed");
                        let ok = if db == b {
                            // Same block: definition must come earlier.
                            blk.insts[..pos].contains(&v)
                        } else {
                            dom.dominates(db, b)
                        };
                        if !ok {
                            return err(format!(
                                "inst {i} in {b} uses {v} (defined in {db}) that does not dominate it"
                            ));
                        }
                    }
                }
            }
        }
        // Terminator uses.
        for v in blk.term.operands() {
            let db = place[v].expect("checked placed");
            let ok = if db == b {
                blk.insts.contains(&v)
            } else {
                dom.dominates(db, b)
            };
            if !ok {
                return err(format!("terminator of {b} uses non-dominating value {v}"));
            }
        }
        // Terminator-specific checks.
        if let Terminator::Switch { cases, .. } | Terminator::ConstSwitch { cases, .. } = &blk.term
        {
            let mut vals: Vec<i64> = cases.iter().map(|(c, _)| *c).collect();
            vals.sort_unstable();
            vals.dedup();
            if vals.len() != cases.len() {
                return err(format!("switch in {b} has duplicate case values"));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::Ty;
    use crate::ops::BinOp;
    use crate::ssa::construct_ssa;

    #[test]
    fn accepts_well_formed() {
        let mut f = Function::new("ok", vec![Ty::Int], Ty::Int);
        let e = f.entry;
        let p = f.append(e, InstKind::Param(0));
        let c = f.const_int(e, 1);
        let s = f.bin(e, BinOp::Add, p, c);
        f.blocks[e].term = Terminator::Return(Some(s));
        construct_ssa(&mut f);
        verify(&f).unwrap();
    }

    #[test]
    fn rejects_use_before_def_in_block() {
        let mut f = Function::new("bad", vec![], Ty::Int);
        let e = f.entry;
        // Create an add whose operand is defined *after* it.
        let c = f.create_inst(InstKind::Const(crate::ops::Const::Int(1)));
        let s = f.create_inst(InstKind::Bin(BinOp::Add, c, c));
        f.blocks[e].insts.push(s);
        f.blocks[e].insts.push(c);
        f.blocks[e].term = Terminator::Return(Some(s));
        f.is_ssa = true;
        assert!(verify(&f).is_err());
    }

    #[test]
    fn rejects_double_placement() {
        let mut f = Function::new("dup", vec![], Ty::None);
        let e = f.entry;
        let c = f.const_int(e, 1);
        f.blocks[e].insts.push(c);
        f.blocks[e].term = Terminator::Return(None);
        assert!(verify(&f).is_err());
    }

    #[test]
    fn rejects_phi_missing_pred() {
        let mut f = Function::new("phi", vec![Ty::Int], Ty::Int);
        let e = f.entry;
        let t = f.add_block();
        let el = f.add_block();
        let j = f.add_block();
        let p = f.append(e, InstKind::Param(0));
        f.blocks[e].term = Terminator::Branch {
            cond: p,
            then_b: t,
            else_b: el,
        };
        let c1 = f.const_int(t, 1);
        f.blocks[t].term = Terminator::Jump(j);
        let _c2 = f.const_int(el, 2);
        f.blocks[el].term = Terminator::Jump(j);
        // φ only lists one of the two predecessors.
        let phi = f.append(j, InstKind::Phi(vec![(t, c1)]));
        f.blocks[j].term = Terminator::Return(Some(phi));
        f.is_ssa = true;
        let e2 = verify(&f).unwrap_err();
        assert!(e2.0.contains("missing operand"), "{e2}");
    }

    #[test]
    fn rejects_unplaced_operand() {
        let mut f = Function::new("unp", vec![], Ty::Int);
        let e = f.entry;
        let ghost = f.create_inst(InstKind::Const(crate::ops::Const::Int(7)));
        let s = f.append(e, InstKind::Copy(ghost));
        f.blocks[e].term = Terminator::Return(Some(s));
        assert!(verify(&f).is_err());
    }

    #[test]
    fn rejects_region_with_dangling_block() {
        // Hand-corrupted: a region membership set naming a block that was
        // never created — the shape a buggy inline would leave behind.
        let mut f = Function::new("dangle", vec![Ty::Int], Ty::Int);
        let e = f.entry;
        let p = f.append(e, InstKind::Param(0));
        f.blocks[e].term = Terminator::Return(Some(p));
        let mut blocks = IdSet::new();
        blocks.insert(e);
        blocks.insert(BlockId::from_index(17));
        f.regions.push(crate::func::DynRegion {
            entry: e,
            blocks,
            const_roots: vec![p],
            key_roots: vec![],
        });
        f.is_ssa = true;
        let err = verify(&f).unwrap_err();
        assert!(err.0.contains("nonexistent block"), "{err}");
    }

    #[test]
    fn rejects_region_with_unrenamed_root() {
        // Hand-corrupted: a const root naming an unplaced value — an
        // un-renamed id from another function's instruction pool.
        let mut f = Function::new("unrooted", vec![Ty::Int], Ty::Int);
        let e = f.entry;
        let p = f.append(e, InstKind::Param(0));
        f.blocks[e].term = Terminator::Return(Some(p));
        let ghost = f.create_inst(InstKind::Const(crate::ops::Const::Int(9)));
        let mut blocks = IdSet::new();
        blocks.insert(e);
        f.regions.push(crate::func::DynRegion {
            entry: e,
            blocks,
            const_roots: vec![ghost],
            key_roots: vec![],
        });
        f.is_ssa = true;
        let err = verify(&f).unwrap_err();
        assert!(err.0.contains("not placed"), "{err}");
    }

    #[test]
    fn module_verify_rejects_arity_and_type_mismatch() {
        use crate::func::Module;
        use crate::ids::FuncId;

        let mk_caller = |nargs: usize| {
            let mut caller = Function::new("caller", vec![Ty::Int], Ty::Int);
            let e = caller.entry;
            let p = caller.append(e, InstKind::Param(0));
            let call = caller.append(
                e,
                InstKind::Call {
                    callee: FuncId::from_index(1),
                    args: vec![p; nargs],
                },
            );
            caller.blocks[e].term = Terminator::Return(Some(call));
            caller.is_ssa = true;
            caller
        };
        let callee = |ret| {
            let mut h = Function::new("helper", vec![Ty::Int], ret);
            let e = h.entry;
            let p = h.append(e, InstKind::Param(0));
            h.blocks[e].term = Terminator::Return(Some(p));
            h.is_ssa = true;
            h
        };

        // Arity mismatch.
        let mut m = Module::new();
        m.funcs.push(mk_caller(2));
        m.funcs.push(callee(Ty::Int));
        m.retype_calls();
        let err = verify_module(&m).unwrap_err();
        assert!(err.0.contains("expects 1 arguments, got 2"), "{err}");

        // Stale call type (retype_calls not re-run).
        let mut m = Module::new();
        m.funcs.push(mk_caller(1)); // call ty defaults to Int
        m.funcs.push(callee(Ty::Float));
        let err = verify_module(&m).unwrap_err();
        assert!(err.0.contains("retype_calls"), "{err}");
        m.retype_calls();
        verify_module(&m).unwrap();

        // Nonexistent callee.
        let mut m = Module::new();
        m.funcs.push(mk_caller(1));
        let err = verify_module(&m).unwrap_err();
        assert!(err.0.contains("does not exist"), "{err}");
    }

    #[test]
    fn rejects_duplicate_switch_cases() {
        let mut f = Function::new("sw", vec![Ty::Int], Ty::None);
        let e = f.entry;
        let d = f.add_block();
        let p = f.append(e, InstKind::Param(0));
        f.blocks[e].term = Terminator::Switch {
            val: p,
            cases: vec![(1, d), (1, d)],
            default: d,
        };
        f.blocks[d].term = Terminator::Return(None);
        f.is_ssa = true;
        assert!(verify(&f).is_err());
    }
}
