//! Functions, basic blocks, modules, globals and dynamic-region metadata.

use crate::ids::{BlockId, FuncId, GlobalId, IdSet, IndexVec, InstId, RegionId, VarId};
use crate::inst::{InstKind, TemplateMarker, Terminator, Ty};
use crate::ops::{BinOp, Const, UnOp};

/// A single instruction together with its result kind.
#[derive(Clone, Debug, PartialEq)]
pub struct InstData {
    /// What the instruction does.
    pub kind: InstKind,
    /// The kind of value it produces ([`Ty::None`] for effects-only).
    pub ty: Ty,
}

/// A basic block: a straight-line instruction sequence plus a terminator.
#[derive(Clone, Debug, PartialEq)]
pub struct Block {
    /// Instructions, in execution order.
    pub insts: Vec<InstId>,
    /// The block's terminator.
    pub term: Terminator,
    /// Set on the header block of a loop the programmer annotated
    /// `unrolled` (§2). Makes the header a *constant merge* in the
    /// run-time-constants analysis (§3.1).
    pub unrolled_header: bool,
    /// Set by the specializer on marker blocks for unrolled-loop arcs.
    pub marker: Option<TemplateMarker>,
}

impl Block {
    /// An empty block ending in [`Terminator::Unreachable`].
    pub fn new() -> Self {
        Block {
            insts: Vec::new(),
            term: Terminator::Unreachable,
            unrolled_header: false,
            marker: None,
        }
    }
}

impl Default for Block {
    fn default() -> Self {
        Self::new()
    }
}

/// Information about a source-level variable.
#[derive(Clone, Debug, PartialEq)]
pub struct VarInfo {
    /// Source name, for diagnostics and printing.
    pub name: String,
    /// Value kind.
    pub ty: Ty,
    /// For frame-allocated variables (arrays, address-taken locals): the
    /// slot size in bytes. SSA construction leaves frame variables alone;
    /// they are accessed via [`InstKind::FrameAddr`].
    pub frame_size: Option<u64>,
}

/// A dynamic region (§2): a single-entry subgraph the programmer asked to
/// have compiled dynamically, plus its annotated run-time-constant roots.
#[derive(Clone, Debug, PartialEq)]
pub struct DynRegion {
    /// The region's entry block (the block holding the annotated code's
    /// first instruction). Before specialization this is the region body's
    /// first block; after specialization it is the block whose terminator is
    /// [`Terminator::EnterRegion`].
    pub entry: BlockId,
    /// Blocks belonging to the region body (before specialization).
    pub blocks: IdSet<BlockId>,
    /// Values annotated constant at region entry (`dynamicRegion(v1, …)`),
    /// including the key values.
    pub const_roots: Vec<InstId>,
    /// Values used to key the code cache (`key(…)`), a subset of
    /// `const_roots`; empty for unkeyed regions.
    pub key_roots: Vec<InstId>,
}

/// A function: CFG of basic blocks over a shared instruction pool.
#[derive(Clone, Debug, PartialEq)]
pub struct Function {
    /// Function name.
    pub name: String,
    /// Parameter kinds (also gives the parameter count).
    pub params: Vec<Ty>,
    /// Result kind ([`Ty::None`] for void functions).
    pub ret_ty: Ty,
    /// Entry block.
    pub entry: BlockId,
    /// All blocks (some may be unreachable after transformation).
    pub blocks: IndexVec<BlockId, Block>,
    /// All instructions; an instruction may appear in at most one block.
    pub insts: IndexVec<InstId, InstData>,
    /// Source variables (used pre-SSA and for frame allocation).
    pub vars: IndexVec<VarId, VarInfo>,
    /// Dynamic regions contained in this function.
    pub regions: IndexVec<RegionId, DynRegion>,
    /// Whether SSA construction has run (no `GetVar`/`SetVar` remain).
    pub is_ssa: bool,
}

impl Function {
    /// A new function with a single empty entry block.
    pub fn new(name: impl Into<String>, params: Vec<Ty>, ret_ty: Ty) -> Self {
        let mut blocks = IndexVec::new();
        let entry = blocks.push(Block::new());
        Function {
            name: name.into(),
            params,
            ret_ty,
            entry,
            blocks,
            insts: IndexVec::new(),
            vars: IndexVec::new(),
            regions: IndexVec::new(),
            is_ssa: false,
        }
    }

    /// The instruction's kind.
    pub fn kind(&self, id: InstId) -> &InstKind {
        &self.insts[id].kind
    }

    /// The instruction's result kind.
    pub fn ty(&self, id: InstId) -> Ty {
        self.insts[id].ty
    }

    /// Append a new instruction to `block`, returning its value id.
    pub fn append(&mut self, block: BlockId, kind: InstKind) -> InstId {
        let ty = self.infer_ty(&kind);
        let id = self.insts.push(InstData { kind, ty });
        self.blocks[block].insts.push(id);
        id
    }

    /// Create an instruction without placing it in any block (used by
    /// transformation passes that splice instruction lists themselves).
    pub fn create_inst(&mut self, kind: InstKind) -> InstId {
        let ty = self.infer_ty(&kind);
        self.insts.push(InstData { kind, ty })
    }

    /// Create a new empty block.
    pub fn add_block(&mut self) -> BlockId {
        self.blocks.push(Block::new())
    }

    /// Compute the result kind of `kind` from its operator and operands.
    pub fn infer_ty(&self, kind: &InstKind) -> Ty {
        match kind {
            InstKind::Const(Const::Int(_)) => Ty::Int,
            InstKind::Const(Const::Float(_)) => Ty::Float,
            InstKind::Copy(a) => self.ty(*a),
            InstKind::Un(op, _) => match op {
                UnOp::FNeg | UnOp::IntToFloat => Ty::Float,
                _ => Ty::Int,
            },
            InstKind::Bin(op, ..) => {
                if op.is_float() && !op.is_float_cmp() {
                    Ty::Float
                } else {
                    Ty::Int
                }
            }
            InstKind::Load { float, .. } => {
                if *float {
                    Ty::Float
                } else {
                    Ty::Int
                }
            }
            InstKind::Store { .. } | InstKind::SetVar(..) => Ty::None,
            InstKind::Call { callee, .. } => self.callee_ret_ty(*callee),
            InstKind::CallIntrinsic { which, .. } => which.result_ty(),
            InstKind::Phi(ins) => ins.first().map(|(_, v)| self.ty(*v)).unwrap_or(Ty::Int),
            InstKind::Select { if_true, .. } => self.ty(*if_true),
            InstKind::GetVar(v) => self.vars[*v].ty,
            InstKind::Param(i) => self.params.get(*i as usize).copied().unwrap_or(Ty::Int),
            InstKind::GlobalAddr(_) | InstKind::FrameAddr(_) => Ty::Int,
            InstKind::Hole { float, .. } => {
                if *float {
                    Ty::Float
                } else {
                    Ty::Int
                }
            }
        }
    }

    // Result kinds of calls are recorded by the lowerer via a side table on
    // the module; within a lone function we default to Int. The module-level
    // `Module::retype_calls` fixes these up after all functions exist.
    fn callee_ret_ty(&self, _callee: FuncId) -> Ty {
        Ty::Int
    }

    /// Iterate over `(BlockId, &Block)`.
    pub fn iter_blocks(&self) -> impl Iterator<Item = (BlockId, &Block)> {
        self.blocks.iter_enumerated()
    }

    /// If `id` is a constant materialization, its value.
    pub fn as_const(&self, id: InstId) -> Option<Const> {
        match self.kind(id) {
            InstKind::Const(c) => Some(*c),
            _ => None,
        }
    }

    /// Convenience: append an integer constant.
    pub fn const_int(&mut self, block: BlockId, v: i64) -> InstId {
        self.append(block, InstKind::Const(Const::Int(v)))
    }

    /// Convenience: append a binary operation.
    pub fn bin(&mut self, block: BlockId, op: BinOp, a: InstId, b: InstId) -> InstId {
        self.append(block, InstKind::Bin(op, a, b))
    }

    /// Total number of instructions currently placed in blocks.
    pub fn placed_inst_count(&self) -> usize {
        self.blocks.iter().map(|b| b.insts.len()).sum()
    }

    /// Resolve every region's constant/key roots through `Copy` chains.
    ///
    /// The front end records roots as fresh `GetVar` reads, which SSA
    /// construction and copy propagation turn into (possibly bypassed)
    /// copies; analyses must see the *underlying* values the region code
    /// actually uses. Call after optimization, before region analysis.
    pub fn canonicalize_region_roots(&mut self) {
        let resolve = |insts: &IndexVec<InstId, InstData>, mut v: InstId| {
            let mut hops = 0;
            while let InstKind::Copy(src) = insts[v].kind {
                v = src;
                hops += 1;
                if hops > insts.len() {
                    break;
                }
            }
            v
        };
        let insts = &self.insts;
        for r in self.regions.iter_mut() {
            for v in r.const_roots.iter_mut().chain(r.key_roots.iter_mut()) {
                *v = resolve(insts, *v);
            }
            r.const_roots.dedup();
        }
    }
}

/// A module global: named storage with optional initial bytes.
#[derive(Clone, Debug, PartialEq)]
pub struct Global {
    /// Name (for lookup from host code).
    pub name: String,
    /// Size in bytes.
    pub size: u64,
    /// Initial contents; zero-filled to `size` if shorter.
    pub init: Vec<u8>,
    /// Required alignment in bytes (power of two).
    pub align: u64,
}

/// A compilation unit: functions plus global data.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Module {
    /// All functions.
    pub funcs: IndexVec<FuncId, Function>,
    /// All globals.
    pub globals: IndexVec<GlobalId, Global>,
}

impl Module {
    /// An empty module.
    pub fn new() -> Self {
        Module::default()
    }

    /// Find a function by name.
    pub fn func_by_name(&self, name: &str) -> Option<FuncId> {
        self.funcs
            .iter_enumerated()
            .find(|(_, f)| f.name == name)
            .map(|(id, _)| id)
    }

    /// Find a global by name.
    pub fn global_by_name(&self, name: &str) -> Option<GlobalId> {
        self.globals
            .iter_enumerated()
            .find(|(_, g)| g.name == name)
            .map(|(id, _)| id)
    }

    /// Re-infer the result kind of every `Call` instruction from its
    /// callee's signature. Run once after all functions are constructed
    /// (calls may reference functions lowered later).
    pub fn retype_calls(&mut self) {
        let ret_tys: Vec<Ty> = self.funcs.iter().map(|f| f.ret_ty).collect();
        for f in self.funcs.iter_mut() {
            for inst in f.insts.iter_mut() {
                if let InstKind::Call { callee, .. } = &inst.kind {
                    inst.ty = ret_tys[callee.index()];
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::MemSize;
    use crate::ops::Signedness;

    #[test]
    fn append_infers_types() {
        let mut f = Function::new("t", vec![Ty::Int], Ty::Int);
        let b = f.entry;
        let c = f.const_int(b, 5);
        assert_eq!(f.ty(c), Ty::Int);
        let fc = f.append(b, InstKind::Const(Const::Float(1.0)));
        assert_eq!(f.ty(fc), Ty::Float);
        let s = f.append(b, InstKind::Bin(BinOp::FAdd, fc, fc));
        assert_eq!(f.ty(s), Ty::Float);
        let cmp = f.append(b, InstKind::Bin(BinOp::FCmpLt, fc, fc));
        assert_eq!(f.ty(cmp), Ty::Int);
        let ld = f.append(
            b,
            InstKind::Load {
                size: MemSize::B8,
                sign: Signedness::Signed,
                addr: c,
                dynamic: false,
                float: true,
            },
        );
        assert_eq!(f.ty(ld), Ty::Float);
        let st = f.append(
            b,
            InstKind::Store {
                size: MemSize::B8,
                addr: c,
                val: ld,
                float: true,
            },
        );
        assert_eq!(f.ty(st), Ty::None);
    }

    #[test]
    fn module_lookup_by_name() {
        let mut m = Module::new();
        let f1 = m.funcs.push(Function::new("alpha", vec![], Ty::None));
        let f2 = m.funcs.push(Function::new("beta", vec![], Ty::Int));
        assert_eq!(m.func_by_name("alpha"), Some(f1));
        assert_eq!(m.func_by_name("beta"), Some(f2));
        assert_eq!(m.func_by_name("gamma"), None);
    }

    #[test]
    fn retype_calls_uses_callee_signature() {
        let mut m = Module::new();
        let mut caller = Function::new("caller", vec![], Ty::Float);
        let fcallee = Function::new("callee", vec![], Ty::Float);
        let b = caller.entry;
        let call = caller.append(
            b,
            InstKind::Call {
                callee: FuncId(1),
                args: vec![],
            },
        );
        assert_eq!(caller.ty(call), Ty::Int); // default before retype
        m.funcs.push(caller);
        m.funcs.push(fcallee);
        m.retype_calls();
        assert_eq!(m.funcs[FuncId(0)].ty(call), Ty::Float);
    }

    #[test]
    fn blocks_start_unreachable() {
        let f = Function::new("t", vec![], Ty::None);
        assert_eq!(f.blocks[f.entry].term, Terminator::Unreachable);
        assert!(!f.blocks[f.entry].unrolled_header);
    }
}
