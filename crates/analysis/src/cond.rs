//! Reachability conditions: disjunctions of conjunctions of constant-branch
//! outcomes, in conjunctive-normal-form set representation (Appendix A.2).
//!
//! A [`Literal`] `B→S` asserts that constant branch `B` (2-way or n-way)
//! takes its successor arc number `S`. A [`Cond`] is a *set of sets*: the
//! outer set is a disjunction, each inner set a conjunction. The paper's
//! example: `{{A→T}, {A→F, B→1}}` means "A's predicate is true, or A's
//! predicate is false and B's switch value takes case 1".
//!
//! Two literals of the same branch with different arcs are mutually
//! exclusive, which gives both the contradiction pruning inside
//! conjunctions and the [`Cond::exclusive`] test used to identify constant
//! merges.

use dyncomp_ir::BlockId;
use std::collections::BTreeSet;
use std::fmt;

/// `B→S`: constant branch at block `B` takes successor arc `S`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Literal {
    /// Block whose terminator is the constant branch.
    pub branch: BlockId,
    /// Index into the terminator's successor list.
    pub succ: u32,
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}→{}", self.branch, self.succ)
    }
}

type Conj = BTreeSet<Literal>;

/// Number of successor arcs of each constant branch, used by the
/// "covers all successors" simplification.
pub trait BranchArity {
    /// How many successor arcs the branch at `b` has.
    fn arity(&self, b: BlockId) -> u32;
}

impl BranchArity for std::collections::HashMap<BlockId, u32> {
    fn arity(&self, b: BlockId) -> u32 {
        *self.get(&b).expect("arity queried for unknown branch")
    }
}

/// A reachability condition in CNF-set representation.
///
/// `Cond::f()` (empty disjunction) is *false* — the strongest condition,
/// the lattice top of the analysis. `Cond::t()` (the set containing the
/// empty conjunction) is *true* — the weakest.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Cond {
    terms: BTreeSet<Conj>,
}

/// Cap on the number of disjuncts before a condition is widened to *true*.
///
/// The paper notes the worst case is exponential in the number of constant
/// branches but small in practice; widening to *true* only loses precision
/// (a merge is then conservatively non-constant), never soundness.
pub const MAX_TERMS: usize = 128;

impl Cond {
    /// The *false* condition (unreachable); identity of `or`.
    pub fn f() -> Self {
        Cond {
            terms: BTreeSet::new(),
        }
    }

    /// The *true* condition (always reachable); identity of `and`.
    pub fn t() -> Self {
        let mut terms = BTreeSet::new();
        terms.insert(Conj::new());
        Cond { terms }
    }

    /// Whether this is the *false* condition.
    pub fn is_false(&self) -> bool {
        self.terms.is_empty()
    }

    /// Whether this is exactly the *true* condition.
    pub fn is_true(&self) -> bool {
        self.terms.len() == 1 && self.terms.iter().next().is_some_and(|c| c.is_empty())
    }

    /// A condition of a single literal.
    pub fn literal(lit: Literal) -> Self {
        let mut c = Conj::new();
        c.insert(lit);
        let mut terms = BTreeSet::new();
        terms.insert(c);
        Cond { terms }
    }

    /// Number of disjuncts.
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    /// Conjoin the literal onto every disjunct (the branch flow function of
    /// Appendix A.2). Disjuncts contradicting the literal are dropped.
    #[must_use]
    pub fn and_literal(&self, lit: Literal) -> Self {
        let mut terms = BTreeSet::new();
        for conj in &self.terms {
            if conj
                .iter()
                .any(|l| l.branch == lit.branch && l.succ != lit.succ)
            {
                continue; // contradiction: this disjunct can't co-occur
            }
            let mut c = conj.clone();
            c.insert(lit);
            terms.insert(c);
        }
        Cond { terms }
    }

    /// Disjoin two conditions (the merge meet function of Appendix A.2),
    /// then simplify: subsumption pruning and the paper's
    /// `{{A→T,CS},{A→F,CS}} → {{CS}}` successor-cover rule.
    #[must_use]
    pub fn or(&self, other: &Self, arity: &dyn BranchArity) -> Self {
        let mut terms: BTreeSet<Conj> = self.terms.union(&other.terms).cloned().collect();
        simplify(&mut terms, arity);
        if terms.len() > MAX_TERMS {
            return Cond::t(); // widen: weakest condition, sound
        }
        Cond { terms }
    }

    /// The paper's mutual-exclusion test: `exclusive(cn1, cn2)` iff every
    /// pair of disjuncts contains literals of the same branch with
    /// different successor arcs (so the conjunction `cn1 ∧ cn2` is
    /// syntactically unsatisfiable).
    ///
    /// *false* is exclusive with everything (an unreachable predecessor
    /// never conflicts).
    pub fn exclusive(&self, other: &Self) -> bool {
        self.terms.iter().all(|c1| {
            other.terms.iter().all(|c2| {
                c1.iter().any(|l1| {
                    c2.iter()
                        .any(|l2| l1.branch == l2.branch && l1.succ != l2.succ)
                })
            })
        })
    }

    /// Iterate the disjuncts (each a sorted set of literals).
    pub fn iter_terms(&self) -> impl Iterator<Item = &BTreeSet<Literal>> {
        self.terms.iter()
    }

    /// Existentially quantify away every literal whose branch satisfies
    /// `drop` (a strict weakening, hence always sound).
    ///
    /// Needed at unrolled-loop boundaries: a constant branch *inside* an
    /// unrolled loop takes a different outcome in every unrolled copy, so
    /// its literals prove mutual exclusion only *within* one iteration.
    /// Conditions flowing out of the loop (exit arcs) or into the next
    /// iteration (back edges) must forget them.
    #[must_use]
    pub fn forget(&self, drop: impl Fn(BlockId) -> bool) -> Self {
        let terms: BTreeSet<Conj> = self
            .terms
            .iter()
            .map(|conj| conj.iter().copied().filter(|l| !drop(l.branch)).collect())
            .collect();
        Cond { terms }
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_false() {
            return write!(f, "⊥");
        }
        write!(f, "{{")?;
        for (i, conj) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{{")?;
            for (j, lit) in conj.iter().enumerate() {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{lit}")?;
            }
            write!(f, "}}")?;
        }
        write!(f, "}}")
    }
}

/// Subsumption + successor-cover simplification, iterated to a fixpoint.
fn simplify(terms: &mut BTreeSet<Conj>, arity: &dyn BranchArity) {
    loop {
        let mut changed = false;

        // Subsumption: a disjunct that is a superset of another is redundant.
        let list: Vec<Conj> = terms.iter().cloned().collect();
        for (i, a) in list.iter().enumerate() {
            for (j, b) in list.iter().enumerate() {
                if i != j && a.is_subset(b) && terms.contains(b) && terms.contains(a) {
                    terms.remove(b);
                    changed = true;
                }
            }
        }

        // Successor cover: disjuncts equal up to one branch's literal, whose
        // literals jointly cover every successor arc of that branch, merge
        // into the shared remainder.
        let list: Vec<Conj> = terms.iter().cloned().collect();
        'outer: for a in &list {
            for la in a {
                let mut rest = a.clone();
                rest.remove(la);
                // Find all disjuncts of the form rest ∪ {la.branch→*}.
                let mut covered: BTreeSet<u32> = BTreeSet::new();
                let mut members: Vec<Conj> = Vec::new();
                for b in &list {
                    if b.len() != a.len() {
                        continue;
                    }
                    let mut brest = b.clone();
                    let Some(lb) = b.iter().find(|l| l.branch == la.branch) else {
                        continue;
                    };
                    brest.remove(lb);
                    if brest == rest {
                        covered.insert(lb.succ);
                        members.push(b.clone());
                    }
                }
                if covered.len() as u32 >= arity.arity(la.branch) && covered.len() > 1 {
                    for m in &members {
                        terms.remove(m);
                    }
                    terms.insert(rest);
                    changed = true;
                    break 'outer;
                }
            }
        }

        if !changed {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn lit(b: u32, s: u32) -> Literal {
        Literal {
            branch: BlockId(b),
            succ: s,
        }
    }

    fn arity2(branches: &[u32]) -> HashMap<BlockId, u32> {
        branches.iter().map(|&b| (BlockId(b), 2)).collect()
    }

    #[test]
    fn true_false_identities() {
        let ar = arity2(&[0]);
        let l = Cond::literal(lit(0, 0));
        assert_eq!(Cond::f().or(&l, &ar), l);
        assert_eq!(Cond::t().and_literal(lit(0, 0)), l);
        assert!(Cond::f().is_false());
        assert!(Cond::t().is_true());
        assert!(!l.is_true());
        assert!(!l.is_false());
    }

    #[test]
    fn contradiction_prunes_disjunct() {
        // (A→0) ∧ A→1 = false
        let c = Cond::literal(lit(0, 0)).and_literal(lit(0, 1));
        assert!(c.is_false());
    }

    #[test]
    fn idempotent_literal() {
        let c = Cond::literal(lit(0, 0)).and_literal(lit(0, 0));
        assert_eq!(c, Cond::literal(lit(0, 0)));
    }

    #[test]
    fn paper_simplification_rule() {
        // {{A→T, CS}, {A→F, CS}} → {{CS}} where CS = {B→1}
        let ar = arity2(&[0, 1]);
        let c1 = Cond::literal(lit(0, 0)).and_literal(lit(1, 1));
        let c2 = Cond::literal(lit(0, 1)).and_literal(lit(1, 1));
        let merged = c1.or(&c2, &ar);
        assert_eq!(merged, Cond::literal(lit(1, 1)));
    }

    #[test]
    fn partial_cover_does_not_simplify() {
        // 3-way switch: two of three arcs covered — no merge.
        let mut ar: HashMap<BlockId, u32> = HashMap::new();
        ar.insert(BlockId(0), 3);
        let c1 = Cond::literal(lit(0, 0));
        let c2 = Cond::literal(lit(0, 1));
        let merged = c1.or(&c2, &ar);
        assert_eq!(merged.num_terms(), 2);
    }

    #[test]
    fn full_switch_cover_simplifies() {
        let mut ar: HashMap<BlockId, u32> = HashMap::new();
        ar.insert(BlockId(0), 3);
        let c = Cond::literal(lit(0, 0))
            .or(&Cond::literal(lit(0, 1)), &ar)
            .or(&Cond::literal(lit(0, 2)), &ar);
        assert!(c.is_true());
    }

    #[test]
    fn subsumption() {
        // {A→0} ∨ {A→0, B→1} = {A→0}
        let ar = arity2(&[0, 1]);
        let strong = Cond::literal(lit(0, 0)).and_literal(lit(1, 1));
        let weak = Cond::literal(lit(0, 0));
        assert_eq!(weak.or(&strong, &ar), weak);
        assert_eq!(strong.or(&weak, &ar), weak);
    }

    #[test]
    fn exclusivity_same_branch_different_arcs() {
        let a = Cond::literal(lit(0, 0));
        let b = Cond::literal(lit(0, 1));
        assert!(a.exclusive(&b));
        assert!(b.exclusive(&a));
        assert!(!a.exclusive(&a));
    }

    #[test]
    fn exclusivity_of_paper_switch_example() {
        // From §3.1's unstructured example, upper graph: the three merge
        // predecessor conditions after `switch (b)` inside `else`:
        //   M-side: {{a→T}};  N-side: {{a→F, b→1}};  O-side after N fallthrough:
        //   {{a→F,b→1},{a→F,b→2}}.
        let ar: HashMap<BlockId, u32> = [(BlockId(0), 2), (BlockId(1), 3)].into_iter().collect();
        let m = Cond::literal(lit(0, 0));
        let n = Cond::literal(lit(0, 1)).and_literal(lit(1, 0));
        let o = n.or(&Cond::literal(lit(0, 1)).and_literal(lit(1, 1)), &ar);
        // Merge of M and O's continuation is exclusive (a→T vs a→F).
        assert!(m.exclusive(&o));
        // N vs O's second disjunct share b-literals that differ.
        let p = Cond::literal(lit(0, 1)).and_literal(lit(1, 2));
        assert!(o.exclusive(&p));
    }

    #[test]
    fn non_exclusive_when_no_common_branch() {
        let a = Cond::literal(lit(0, 0));
        let b = Cond::literal(lit(1, 0));
        assert!(!a.exclusive(&b));
    }

    #[test]
    fn false_is_exclusive_with_everything() {
        let a = Cond::literal(lit(0, 0));
        assert!(Cond::f().exclusive(&a));
        assert!(a.exclusive(&Cond::f()));
        assert!(Cond::f().exclusive(&Cond::t()));
    }

    #[test]
    fn true_is_not_exclusive() {
        assert!(!Cond::t().exclusive(&Cond::t()));
        assert!(!Cond::t().exclusive(&Cond::literal(lit(0, 0))));
    }

    #[test]
    fn widening_over_cap_goes_true() {
        // Build > MAX_TERMS incomparable disjuncts.
        let mut ar: HashMap<BlockId, u32> = HashMap::new();
        for i in 0..(MAX_TERMS as u32 + 2) {
            ar.insert(BlockId(i), 2);
        }
        // Terms {B_i→0, B_{i+1}→1}: pairwise non-subsuming, non-covering.
        let mut c = Cond::f();
        for i in 0..(MAX_TERMS as u32 + 1) {
            let t = Cond::literal(lit(i, 0)).and_literal(lit(i + 1, 1));
            c = c.or(&t, &ar);
        }
        assert!(c.is_true());
    }

    #[test]
    fn display_formats() {
        let c = Cond::literal(lit(3, 1));
        assert_eq!(c.to_string(), "{{b3→1}}");
        assert_eq!(Cond::f().to_string(), "⊥");
        assert_eq!(Cond::t().to_string(), "{{}}");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use dyncomp_ir::prng::SplitMix64;
    use std::collections::HashMap;

    /// A random small condition over 4 two-way branches.
    fn random_cond(rng: &mut SplitMix64) -> Cond {
        let arity: HashMap<BlockId, u32> = (0..4).map(|b| (BlockId(b), 2)).collect();
        let mut c = Cond::f();
        for _ in 0..rng.below(4) {
            let mut term = Cond::t();
            for _ in 0..rng.below(3) {
                term = term.and_literal(Literal {
                    branch: BlockId(rng.below(4) as u32),
                    succ: rng.below(2) as u32,
                });
            }
            c = c.or(&term, &arity);
        }
        c
    }

    fn random_outcomes(rng: &mut SplitMix64) -> [u32; 4] {
        [
            rng.below(2) as u32,
            rng.below(2) as u32,
            rng.below(2) as u32,
            rng.below(2) as u32,
        ]
    }

    fn arity4() -> HashMap<BlockId, u32> {
        (0..4).map(|b| (BlockId(b), 2)).collect()
    }

    /// Evaluate a condition under a concrete branch-outcome assignment.
    fn eval(c: &Cond, outcomes: &[u32; 4]) -> bool {
        c.iter_terms()
            .any(|conj| conj.iter().all(|l| outcomes[l.branch.index()] == l.succ))
    }

    #[test]
    fn or_is_union_semantically() {
        let mut rng = SplitMix64::new(0xc0_0001);
        for _ in 0..500 {
            let a = random_cond(&mut rng);
            let b = random_cond(&mut rng);
            let outcomes = random_outcomes(&mut rng);
            let joined = a.or(&b, &arity4());
            assert_eq!(
                eval(&joined, &outcomes),
                eval(&a, &outcomes) || eval(&b, &outcomes)
            );
        }
    }

    #[test]
    fn and_literal_is_conjunction_semantically() {
        let mut rng = SplitMix64::new(0xc0_0002);
        for _ in 0..500 {
            let a = random_cond(&mut rng);
            let br = rng.below(4) as u32;
            let s = rng.below(2) as u32;
            let outcomes = random_outcomes(&mut rng);
            let lit = Literal {
                branch: BlockId(br),
                succ: s,
            };
            let c = a.and_literal(lit);
            assert_eq!(
                eval(&c, &outcomes),
                eval(&a, &outcomes) && outcomes[br as usize] == s
            );
        }
    }

    #[test]
    fn exclusive_is_sound() {
        let mut rng = SplitMix64::new(0xc0_0003);
        for _ in 0..500 {
            let a = random_cond(&mut rng);
            let b = random_cond(&mut rng);
            // If the syntactic test claims exclusivity, no assignment may
            // satisfy both (soundness; completeness is not promised).
            if a.exclusive(&b) {
                let outcomes = random_outcomes(&mut rng);
                assert!(
                    !(eval(&a, &outcomes) && eval(&b, &outcomes)),
                    "exclusive conditions both true under {outcomes:?}"
                );
            }
        }
    }

    #[test]
    fn exclusive_is_symmetric() {
        let mut rng = SplitMix64::new(0xc0_0004);
        for _ in 0..500 {
            let a = random_cond(&mut rng);
            let b = random_cond(&mut rng);
            assert_eq!(a.exclusive(&b), b.exclusive(&a));
        }
    }

    #[test]
    fn forget_weakens() {
        let mut rng = SplitMix64::new(0xc0_0005);
        for _ in 0..500 {
            let a = random_cond(&mut rng);
            let br = rng.below(4) as u32;
            let outcomes = random_outcomes(&mut rng);
            let f = a.forget(|b| b == BlockId(br));
            // Weakening: wherever a holds, forget(a) holds.
            if eval(&a, &outcomes) {
                assert!(eval(&f, &outcomes));
            }
            // And the forgotten branch no longer appears.
            for conj in f.iter_terms() {
                assert!(conj.iter().all(|l| l.branch != BlockId(br)));
            }
        }
    }

    #[test]
    fn or_identity_and_idempotence() {
        let mut rng = SplitMix64::new(0xc0_0006);
        for _ in 0..500 {
            let a = random_cond(&mut rng);
            assert_eq!(a.or(&Cond::f(), &arity4()), a.clone());
            let doubled = a.or(&a, &arity4());
            // Idempotent up to semantics.
            for outcomes in [[0, 0, 0, 0], [1, 0, 1, 0], [0, 1, 0, 1], [1, 1, 1, 1]] {
                assert_eq!(eval(&doubled, &outcomes), eval(&a, &outcomes));
            }
        }
    }
}
