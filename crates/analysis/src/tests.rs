//! Tests reproducing the worked examples of §3.1 and Appendix A.

use crate::cond::Literal;
use crate::rtc::{analyze_region, AnalysisConfig};
use crate::unroll::{check_unrollable, UnrollError};
use dyncomp_ir::dom::DomTree;
use dyncomp_ir::loops::find_loops;
use dyncomp_ir::{
    BinOp, BlockId, DynRegion, Function, IdSet, InstId, InstKind, MemSize, RegionId, Signedness,
    Terminator, Ty,
};

fn cfg() -> AnalysisConfig {
    AnalysisConfig::default()
}

/// Make all current blocks (except the entry) a region with the given
/// roots; the region entry is `entry`.
fn region_over(
    f: &mut Function,
    entry: BlockId,
    blocks: &[BlockId],
    roots: Vec<InstId>,
) -> RegionIdWrap {
    let region = f.regions.push(DynRegion {
        entry,
        blocks: blocks.iter().copied().collect::<IdSet<_>>(),
        const_roots: roots,
        key_roots: vec![],
    });
    f.is_ssa = true;
    RegionIdWrap(region)
}

struct RegionIdWrap(RegionId);

/// §3.1, first diagram: `if (test) x=1 else x=2` with **non-constant**
/// test — the φ after the merge is not a run-time constant even though
/// both reaching definitions are.
#[test]
fn nonconstant_test_kills_merge() {
    let mut f = Function::new("m1", vec![Ty::Int], Ty::Int);
    let e = f.entry;
    let body = f.add_block();
    let t = f.add_block();
    let el = f.add_block();
    let j = f.add_block();
    let test = f.append(e, InstKind::Param(0));
    f.blocks[e].term = Terminator::Jump(body);
    f.blocks[body].term = Terminator::Branch {
        cond: test,
        then_b: t,
        else_b: el,
    };
    let x1 = f.const_int(t, 1);
    f.blocks[t].term = Terminator::Jump(j);
    let x2 = f.const_int(el, 2);
    f.blocks[el].term = Terminator::Jump(j);
    let x3 = f.append(j, InstKind::Phi(vec![(t, x1), (el, x2)]));
    f.blocks[j].term = Terminator::Return(Some(x3));

    // test is NOT a root: it is a dynamic value.
    let r = region_over(&mut f, body, &[body, t, el, j], vec![]);
    let a = analyze_region(&f, r.0, &cfg());
    assert!(a.is_const(x1), "x1 := 1 is a compile-time constant");
    assert!(a.is_const(x2));
    assert!(!a.is_const(x3), "φ at a non-constant merge is not constant");
    assert!(!a.const_merges.contains(j));
    assert!(!a.const_branches.contains(body));
}

/// §3.1, second diagram: same graph but `test` **is** a constant — the
/// merge is constant (mutually exclusive reachability) and x3 is constant.
#[test]
fn constant_test_makes_merge_constant() {
    let mut f = Function::new("m2", vec![Ty::Int], Ty::Int);
    let e = f.entry;
    let body = f.add_block();
    let t = f.add_block();
    let el = f.add_block();
    let j = f.add_block();
    let test = f.append(e, InstKind::Param(0));
    f.blocks[e].term = Terminator::Jump(body);
    let t1 = f.append(body, InstKind::Copy(test));
    f.blocks[body].term = Terminator::Branch {
        cond: t1,
        then_b: t,
        else_b: el,
    };
    let x1 = f.const_int(t, 1);
    f.blocks[t].term = Terminator::Jump(j);
    let x2 = f.const_int(el, 2);
    f.blocks[el].term = Terminator::Jump(j);
    let x3 = f.append(j, InstKind::Phi(vec![(t, x1), (el, x2)]));
    f.blocks[j].term = Terminator::Return(Some(x3));

    let r = region_over(&mut f, body, &[body, t, el, j], vec![test]);
    let a = analyze_region(&f, r.0, &cfg());
    assert!(a.is_const(t1));
    assert!(a.const_branches.contains(body));
    assert!(a.const_merges.contains(j));
    assert!(
        a.is_const(x3),
        "idempotent-φ rule applies at constant merges"
    );
    // Reachability conditions on the arms are the branch literals.
    assert_eq!(
        a.reach[&t],
        crate::cond::Cond::literal(Literal {
            branch: body,
            succ: 0
        })
    );
    assert_eq!(
        a.reach[&el],
        crate::cond::Cond::literal(Literal {
            branch: body,
            succ: 1
        })
    );
    // After the (covering) merge, the join is plainly reachable again.
    assert!(a.reach[&j].is_true());
}

/// Builds the paper's unstructured example:
///
/// ```c
/// if (a) { M }
/// else {
///   switch (b) {
///     case 1: N; /* fall through */
///     case 2: O; break;
///     case 3: P; goto L;
///   }
///   Q;
/// }
/// R;
/// L: ...
/// ```
///
/// Returns (function, region, blocks, φs at the merges O, Q, R, L).
#[allow(clippy::type_complexity)]
fn unstructured_example() -> (
    Function,
    RegionId,
    [BlockId; 8],
    [InstId; 4],
    InstId,
    InstId,
) {
    let mut f = Function::new("unstructured", vec![Ty::Int, Ty::Int], Ty::Int);
    let e = f.entry;
    let top = f.add_block(); // branch on a
    let bm = f.add_block(); // M
    let bsw = f.add_block(); // switch(b)
    let bn = f.add_block(); // N (falls through to O)
    let bo = f.add_block(); // O (merge: from sw case2 and N)
    let bq = f.add_block(); // Q (merge: from O break and sw default)
    let br = f.add_block(); // R (merge: from M and Q)
    let bl = f.add_block(); // L (merge: from R and P-goto)
    let bp = f.add_block(); // P; goto L

    let a = f.append(e, InstKind::Param(0));
    let b = f.append(e, InstKind::Param(1));
    f.blocks[e].term = Terminator::Jump(top);

    let ac = f.append(top, InstKind::Copy(a));
    // A constant available on every path (defined inside the region so the
    // analysis may classify it).
    let zero = f.const_int(top, 0);
    f.blocks[top].term = Terminator::Branch {
        cond: ac,
        then_b: bm,
        else_b: bsw,
    };

    // M: m = 10
    let m = f.const_int(bm, 10);
    f.blocks[bm].term = Terminator::Jump(br);

    // switch(b): 1 -> N, 2 -> O, 3 -> P, default -> Q
    let bc = f.append(bsw, InstKind::Copy(b));
    let swdefault = bq;
    f.blocks[bsw].term = Terminator::Switch {
        val: bc,
        cases: vec![(1, bn), (2, bo), (3, bp)],
        default: swdefault,
    };

    // N: n = 20, falls into O.
    let n = f.const_int(bn, 20);
    f.blocks[bn].term = Terminator::Jump(bo);

    // O merge: phi(from sw: zero, from N: n)
    let phi_o = f.append(bo, InstKind::Phi(vec![(bsw, zero), (bn, n)]));
    f.blocks[bo].term = Terminator::Jump(bq);

    // Q merge: phi(from O: phi_o, from sw default: zero)
    let phi_q = f.append(bq, InstKind::Phi(vec![(bo, phi_o), (bsw, zero)]));
    f.blocks[bq].term = Terminator::Jump(br);

    // R merge: phi(from M: m, from Q: phi_q)
    let phi_r = f.append(br, InstKind::Phi(vec![(bm, m), (bq, phi_q)]));
    f.blocks[br].term = Terminator::Jump(bl);

    // P: p = 30; goto L
    let p = f.const_int(bp, 30);
    f.blocks[bp].term = Terminator::Jump(bl);

    // L merge: phi(from R: phi_r, from P: p)
    let phi_l = f.append(bl, InstKind::Phi(vec![(br, phi_r), (bp, p)]));
    f.blocks[bl].term = Terminator::Return(Some(phi_l));

    let blocks = [top, bm, bsw, bn, bo, bq, br, bl];
    let region = f.regions.push(DynRegion {
        entry: top,
        blocks: blocks.iter().copied().chain([bp]).collect::<IdSet<_>>(),
        const_roots: vec![],
        key_roots: vec![],
    });
    f.is_ssa = true;
    (f, region, blocks, [phi_o, phi_q, phi_r, phi_l], a, b)
}

/// Upper graph of the §3.1 figure: both `a` and `b` constant — every merge
/// is a constant merge and all φs are constants.
#[test]
fn unstructured_all_merges_constant_when_a_and_b_constant() {
    let (mut f, region, blocks, phis, a, b) = unstructured_example();
    f.regions[region].const_roots = vec![a, b];
    let an = analyze_region(&f, region, &cfg());
    let [_top, _bm, _bsw, _bn, bo, bq, br, bl] = blocks;
    assert!(an.const_merges.contains(bo), "O is a constant merge");
    assert!(an.const_merges.contains(bq), "Q is a constant merge");
    assert!(an.const_merges.contains(br), "R is a constant merge");
    assert!(an.const_merges.contains(bl), "L is a constant merge");
    for phi in phis {
        assert!(an.is_const(phi), "{phi} should be constant");
    }
}

/// Lower graph: only `a` constant — exactly the R merge is constant.
#[test]
fn unstructured_only_r_constant_when_only_a_constant() {
    let (mut f, region, blocks, phis, a, _b) = unstructured_example();
    f.regions[region].const_roots = vec![a];
    let an = analyze_region(&f, region, &cfg());
    let [_top, _bm, bsw, _bn, bo, bq, br, bl] = blocks;
    assert!(
        !an.const_branches.contains(bsw),
        "switch on b is not constant"
    );
    assert!(!an.const_merges.contains(bo));
    assert!(!an.const_merges.contains(bq));
    assert!(
        an.const_merges.contains(br),
        "R is still constant: a→T vs a→F"
    );
    assert!(!an.const_merges.contains(bl));
    let [phi_o, phi_q, phi_r, phi_l] = phis;
    assert!(!an.is_const(phi_o));
    assert!(!an.is_const(phi_q));
    // φ_r's operands: m (const) and φ_q (not const) — so φ_r is NOT
    // constant despite the constant merge. The merge classification is
    // what the figure demonstrates.
    assert!(!an.is_const(phi_r));
    assert!(!an.is_const(phi_l));
}

/// Without the reachability analysis (the ablation), the unstructured
/// example finds NO constant merges even with both roots constant.
#[test]
fn ablation_no_reachability_loses_unstructured_merges() {
    let (mut f, region, blocks, phis, a, b) = unstructured_example();
    f.regions[region].const_roots = vec![a, b];
    let an = analyze_region(
        &f,
        region,
        &AnalysisConfig {
            use_reachability: false,
        },
    );
    let [_top, _bm, _bsw, _bn, bo, bq, br, bl] = blocks;
    for m in [bo, bq, br, bl] {
        assert!(!an.const_merges.contains(m));
    }
    for phi in phis {
        assert!(!an.is_const(phi));
    }
}

/// §3.1 unrolled-loop example: `for (p = lst; p != NULL; p = p->next)` —
/// with the header marked `unrolled`, the induction variable φ is constant
/// (each unrolled copy sees a distinct fixed value).
fn pointer_chase(unrolled: bool) -> (Function, RegionId, InstId, InstId, InstId, BlockId) {
    let mut f = Function::new("chase", vec![Ty::Int], Ty::None);
    let e = f.entry;
    let pre = f.add_block();
    let h = f.add_block();
    let body = f.add_block();
    let exit = f.add_block();
    let lst = f.append(e, InstKind::Param(0));
    f.blocks[e].term = Terminator::Jump(pre);
    let p1 = f.append(pre, InstKind::Copy(lst));
    f.blocks[pre].term = Terminator::Jump(h);
    // h: p2 = φ(p1 from pre, p3 from body); t = p2 != 0
    let p2 = f.append(h, InstKind::Phi(vec![(pre, p1)])); // body op patched below
    let null = f.const_int(h, 0);
    let t = f.bin(h, BinOp::CmpNe, p2, null);
    f.blocks[h].term = Terminator::Branch {
        cond: t,
        then_b: body,
        else_b: exit,
    };
    // body: p3 = load [p2 + 8] (the ->next field)
    let eight = f.const_int(body, 8);
    let addr = f.bin(body, BinOp::Add, p2, eight);
    let p3 = f.append(
        body,
        InstKind::Load {
            size: MemSize::B8,
            sign: Signedness::Unsigned,
            addr,
            dynamic: false,
            float: false,
        },
    );
    f.blocks[body].term = Terminator::Jump(h);
    if let InstKind::Phi(ins) = &mut f.insts[p2].kind {
        ins.push((body, p3));
    }
    f.blocks[exit].term = Terminator::Return(None);
    f.blocks[h].unrolled_header = unrolled;

    let region = f.regions.push(DynRegion {
        entry: pre,
        blocks: [pre, h, body, exit].into_iter().collect::<IdSet<_>>(),
        const_roots: vec![lst],
        key_roots: vec![],
    });
    f.is_ssa = true;
    (f, region, p2, p3, t, h)
}

#[test]
fn unrolled_loop_induction_variable_is_constant() {
    let (f, region, p2, p3, t, h) = pointer_chase(true);
    let a = analyze_region(&f, region, &cfg());
    assert!(
        a.const_merges.contains(h),
        "unrolled header is a constant merge by fiat"
    );
    assert!(a.is_const(p2), "φ through the unrolled header is constant");
    assert!(a.is_const(p3), "load through constant pointer is constant");
    assert!(a.is_const(t), "loop-governing test is constant");
    assert!(a.const_branches.contains(h));
}

#[test]
fn non_unrolled_loop_induction_variable_is_not_constant() {
    let (f, region, p2, p3, t, _h) = pointer_chase(false);
    let a = analyze_region(&f, region, &cfg());
    assert!(!a.is_const(p2));
    assert!(!a.is_const(p3));
    assert!(!a.is_const(t));
}

#[test]
fn unrolled_pointer_chase_is_legal_to_unroll() {
    let (f, region, _, _, _, h) = pointer_chase(true);
    let a = analyze_region(&f, region, &cfg());
    let dom = DomTree::compute(&f);
    let forest = find_loops(&f, &dom);
    let l = check_unrollable(&f, region, &a, &forest, h).expect("legal");
    assert_eq!(l.header, h);
    assert_eq!(l.latches.len(), 1);
}

#[test]
fn dynamic_loop_is_illegal_to_unroll() {
    // Same loop but lst is NOT a root: the governing branch is dynamic.
    let (mut f, region, _, _, _, h) = pointer_chase(true);
    f.regions[region].const_roots = vec![];
    let a = analyze_region(&f, region, &cfg());
    let dom = DomTree::compute(&f);
    let forest = find_loops(&f, &dom);
    assert_eq!(
        check_unrollable(&f, region, &a, &forest, h).err(),
        Some(UnrollError::NoConstantGate(h))
    );
}

#[test]
fn unroll_check_rejects_non_loop_header() {
    let (f, region, _, _, _, _) = pointer_chase(true);
    let a = analyze_region(&f, region, &cfg());
    let dom = DomTree::compute(&f);
    let forest = find_loops(&f, &dom);
    let bogus = f.entry;
    assert_eq!(
        check_unrollable(&f, region, &a, &forest, bogus).err(),
        Some(UnrollError::NotALoop(bogus))
    );
}

/// §3.1 operation rules: division may trap, so it never produces a
/// run-time constant; `dynamic*` loads never do; stores change nothing.
#[test]
fn operation_rules() {
    let mut f = Function::new("rules", vec![Ty::Int, Ty::Int], Ty::Int);
    let e = f.entry;
    let body = f.add_block();
    let k = f.append(e, InstKind::Param(0));
    f.blocks[e].term = Terminator::Jump(body);
    let two = f.const_int(body, 2);
    let quot = f.bin(body, BinOp::DivS, k, two); // may trap: not constant
    let shift = f.bin(body, BinOp::ShrS, k, two); // pure: constant
    let ld = f.append(
        body,
        InstKind::Load {
            size: MemSize::B8,
            sign: Signedness::Signed,
            addr: k,
            dynamic: false,
            float: false,
        },
    );
    let dynld = f.append(
        body,
        InstKind::Load {
            size: MemSize::B8,
            sign: Signedness::Signed,
            addr: k,
            dynamic: true,
            float: false,
        },
    );
    // A store through the constant pointer: no effect on the analysis.
    f.append(
        body,
        InstKind::Store {
            size: MemSize::B8,
            addr: k,
            val: two,
            float: false,
        },
    );
    let ld2 = f.append(
        body,
        InstKind::Load {
            size: MemSize::B8,
            sign: Signedness::Signed,
            addr: k,
            dynamic: false,
            float: false,
        },
    );
    let alloc = f.append(
        body,
        InstKind::CallIntrinsic {
            which: dyncomp_ir::Intrinsic::Alloc,
            args: vec![two],
        },
    );
    let mx = f.append(
        body,
        InstKind::CallIntrinsic {
            which: dyncomp_ir::Intrinsic::Max,
            args: vec![k, two],
        },
    );
    f.blocks[body].term = Terminator::Return(Some(shift));

    let r = region_over(&mut f, body, &[body], vec![k]);
    let a = analyze_region(&f, r.0, &cfg());
    assert!(!a.is_const(quot), "division may trap");
    assert!(a.is_const(shift));
    assert!(a.is_const(ld), "load through constant pointer");
    assert!(!a.is_const(dynld), "dynamic* load");
    assert!(a.is_const(ld2), "stores have no effect on the constant set");
    assert!(!a.is_const(alloc), "alloc is not idempotent");
    assert!(a.is_const(mx), "max is idempotent and side-effect free");
}

/// Constants feed forward through chains and die at the first dynamic
/// input.
#[test]
fn derived_constant_chains() {
    let mut f = Function::new("chain", vec![Ty::Int, Ty::Int], Ty::Int);
    let e = f.entry;
    let body = f.add_block();
    let k = f.append(e, InstKind::Param(0));
    let d = f.append(e, InstKind::Param(1));
    f.blocks[e].term = Terminator::Jump(body);
    let c1 = f.const_int(body, 3);
    let t1 = f.bin(body, BinOp::Mul, k, c1);
    let t2 = f.bin(body, BinOp::Add, t1, k);
    let t3 = f.bin(body, BinOp::Add, t2, d); // dynamic from here on
    let t4 = f.bin(body, BinOp::Mul, t3, c1);
    f.blocks[body].term = Terminator::Return(Some(t4));
    let r = region_over(&mut f, body, &[body], vec![k]);
    let a = analyze_region(&f, r.0, &cfg());
    assert!(a.is_const(t1));
    assert!(a.is_const(t2));
    assert!(!a.is_const(t3));
    assert!(!a.is_const(t4));
}

/// Nested constant diamonds: inner and outer merges both constant.
#[test]
fn nested_constant_diamonds() {
    let mut f = Function::new("nest", vec![Ty::Int, Ty::Int], Ty::Int);
    let e = f.entry;
    let top = f.add_block();
    let l = f.add_block();
    let li = f.add_block(); // inner branch inside left arm
    let lt = f.add_block();
    let lf = f.add_block();
    let lj = f.add_block(); // inner join
    let rr = f.add_block();
    let j = f.add_block(); // outer join
    let k1 = f.append(e, InstKind::Param(0));
    let k2 = f.append(e, InstKind::Param(1));
    f.blocks[e].term = Terminator::Jump(top);
    f.blocks[top].term = Terminator::Branch {
        cond: k1,
        then_b: l,
        else_b: rr,
    };
    f.blocks[l].term = Terminator::Jump(li);
    f.blocks[li].term = Terminator::Branch {
        cond: k2,
        then_b: lt,
        else_b: lf,
    };
    let a1 = f.const_int(lt, 1);
    f.blocks[lt].term = Terminator::Jump(lj);
    let a2 = f.const_int(lf, 2);
    f.blocks[lf].term = Terminator::Jump(lj);
    let phi_inner = f.append(lj, InstKind::Phi(vec![(lt, a1), (lf, a2)]));
    f.blocks[lj].term = Terminator::Jump(j);
    let a3 = f.const_int(rr, 3);
    f.blocks[rr].term = Terminator::Jump(j);
    let phi_outer = f.append(j, InstKind::Phi(vec![(lj, phi_inner), (rr, a3)]));
    f.blocks[j].term = Terminator::Return(Some(phi_outer));

    let r = region_over(&mut f, top, &[top, l, li, lt, lf, lj, rr, j], vec![k1, k2]);
    let a = analyze_region(&f, r.0, &cfg());
    assert!(a.const_merges.contains(lj));
    assert!(a.const_merges.contains(j));
    assert!(a.is_const(phi_inner));
    assert!(a.is_const(phi_outer));
}

/// A value defined outside the region that is not a root is not constant,
/// even if it is the result of a "pure" op.
#[test]
fn non_root_live_ins_are_dynamic() {
    let mut f = Function::new("livein", vec![Ty::Int], Ty::Int);
    let e = f.entry;
    let body = f.add_block();
    let p = f.append(e, InstKind::Param(0));
    let two = f.const_int(e, 2);
    let outside = f.bin(e, BinOp::Mul, p, two); // defined before region
    f.blocks[e].term = Terminator::Jump(body);
    let one = f.const_int(body, 1);
    let use1 = f.bin(body, BinOp::Add, outside, one);
    f.blocks[body].term = Terminator::Return(Some(use1));
    let r = region_over(&mut f, body, &[body], vec![]);
    let a = analyze_region(&f, r.0, &cfg());
    assert!(!a.is_const(use1));
    assert!(a.is_const(one), "in-region literal constants are constant");
}
