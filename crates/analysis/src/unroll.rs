//! Legality checking for `unrolled`-annotated loops (§2).
//!
//! "The loop termination condition must be governed by a run-time
//! constant." Complete unrolling stitches one copy of the loop body per
//! iteration; the decision to stitch *another* copy is made by the run-time
//! constant branches recorded per iteration, so some constant branch inside
//! the loop must separate paths that reach the back edge from paths that do
//! not. Dynamic branches *may* exit the loop (the paper's cache-lookup
//! `return CacheHit` does), because the stitcher simply emits both sides —
//! but a dynamic branch must never be the only gate on the back edge, or
//! set-up code and stitching would not terminate.

use crate::rtc::RegionAnalysis;
use dyncomp_ir::loops::{LoopForest, NaturalLoop};
use dyncomp_ir::{BlockId, Function, IdSet, RegionId};
use std::fmt;

/// Why an annotated loop cannot be completely unrolled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UnrollError {
    /// The annotated header is not the header of any natural loop.
    NotALoop(BlockId),
    /// The loop crosses the dynamic region boundary.
    EscapesRegion(BlockId),
    /// The function's CFG is irreducible; the set-up generator cannot
    /// schedule it.
    Irreducible,
    /// No constant branch inside the loop separates back-edge-reaching
    /// paths from the rest: termination is not governed by a run-time
    /// constant.
    NoConstantGate(BlockId),
}

impl fmt::Display for UnrollError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnrollError::NotALoop(b) => {
                write!(f, "unrolled annotation on {b}, which heads no natural loop")
            }
            UnrollError::EscapesRegion(b) => {
                write!(
                    f,
                    "unrolled loop at {b} is not contained in its dynamic region"
                )
            }
            UnrollError::Irreducible => write!(f, "control flow graph is irreducible"),
            UnrollError::NoConstantGate(b) => write!(
                f,
                "termination of unrolled loop at {b} is not governed by a run-time constant"
            ),
        }
    }
}

impl std::error::Error for UnrollError {}

/// Check that the loop headed by `header` may legally be fully unrolled.
///
/// # Errors
/// Returns the specific [`UnrollError`] explaining the failed requirement.
pub fn check_unrollable<'l>(
    f: &Function,
    region: RegionId,
    analysis: &RegionAnalysis,
    forest: &'l LoopForest,
    header: BlockId,
) -> Result<&'l NaturalLoop, UnrollError> {
    if forest.irreducible {
        return Err(UnrollError::Irreducible);
    }
    let l = forest
        .loop_with_header(header)
        .ok_or(UnrollError::NotALoop(header))?;
    let r = &f.regions[region];
    for b in l.blocks.iter() {
        if !r.blocks.contains(b) {
            return Err(UnrollError::EscapesRegion(header));
        }
    }

    // Blocks that can reach a latch through loop-internal, non-back edges.
    let latch_reaching = blocks_reaching_latches(f, l);

    // Some constant branch must have successors on both sides of that set.
    let gated = l.blocks.iter().any(|b| {
        if !analysis.const_branches.contains(b) {
            return false;
        }
        let succs = f.blocks[b].term.successors();
        let reaches = |s: &BlockId| l.blocks.contains(*s) && latch_reaching.contains(*s);
        succs.iter().any(reaches) && succs.iter().any(|s| !reaches(s))
    });
    if !gated {
        return Err(UnrollError::NoConstantGate(header));
    }
    Ok(l)
}

/// The set of loop blocks from which a latch is reachable using only
/// loop-internal edges, never traversing a back edge (latch → header).
fn blocks_reaching_latches(f: &Function, l: &NaturalLoop) -> IdSet<BlockId> {
    // Reverse reachability from the latches.
    let mut out = IdSet::new();
    let mut work: Vec<BlockId> = l.latches.clone();
    for &b in &l.latches {
        out.insert(b);
    }
    while let Some(b) = work.pop() {
        for p in l.blocks.iter() {
            if !out.contains(p) && f.blocks[p].term.successors().contains(&b) {
                // Walking backward never crosses a back edge: back edges
                // start at latches, and every latch is already in `out`.
                out.insert(p);
                work.push(p);
            }
        }
    }
    out
}
