//! The run-time-constants analysis, interleaved with the reachability
//! analysis (§3.1 and Appendix A of the paper).
//!
//! Given the programmer-annotated constant roots of a dynamic region, the
//! analysis computes the *greatest* fixed point — the largest set of values
//! that are invariant across every execution of the region:
//!
//! * `x := y op z` is constant iff `y`, `z` are and `op` is idempotent,
//!   side-effect-free and non-trapping (so `/` is out; see
//!   [`dyncomp_ir::BinOp::is_specializable`]);
//! * `x := f(…)` likewise, for pure intrinsics only (`malloc`-like
//!   allocation is not idempotent);
//! * `x := *p` is constant iff `p` is and the load is not annotated
//!   `dynamic*`; stores have no effect on the constant set;
//! * a φ at a merge is constant iff all its operands are **and** the merge
//!   is a *constant merge*: either the header of an `unrolled` loop, or a
//!   merge whose predecessors' reachability conditions are pairwise
//!   mutually exclusive.
//!
//! The reachability analysis supplies that last test. It runs forward over
//! the region, conjoining a branch literal `B→S` along each successor arc
//! of a *constant* branch and disjoining at merges (see [`crate::cond`]).
//! The two analyses are interdependent — reachability needs to know which
//! branches are constant, constants need to know which merges are constant
//! — so they are iterated together to a combined (greatest) fixed point, in
//! the style of Click & Cooper's combined analyses. The optimistic start
//! (everything constant) is what lets values circulate through unrolled
//! loop headers (the paper's `p := p->next` pointer-chase example).

use crate::cond::{Cond, Literal};
use dyncomp_ir::{BlockId, DynRegion, Function, IdSet, InstId, InstKind, RegionId, Terminator};
use std::collections::HashMap;

/// Block sets and headers of `unrolled` loops, used to weaken conditions at
/// loop boundaries (per-iteration branch outcomes must not escape).
type LoopScopes = Vec<(IdSet<BlockId>, BlockId)>;

/// Weaken `cond` when the arc `p → s` exits an unrolled loop or crosses
/// its back edge: forget the literals of branches inside that loop.
fn forget_at_boundary(scopes: &LoopScopes, cond: Cond, p: BlockId, s: BlockId) -> Cond {
    let mut c = cond;
    for (blocks, header) in scopes {
        if blocks.contains(p) && (!blocks.contains(s) || s == *header) {
            c = c.forget(|b| blocks.contains(b));
        }
    }
    c
}

/// Analysis configuration.
#[derive(Clone, Copy, Debug)]
pub struct AnalysisConfig {
    /// Run the reachability analysis interleaved with the constants
    /// analysis (the paper's approach). When `false`, only unrolled loop
    /// headers are constant merges — the ablation showing what is lost on
    /// unstructured graphs without reachability conditions.
    pub use_reachability: bool,
}

impl Default for AnalysisConfig {
    fn default() -> Self {
        AnalysisConfig {
            use_reachability: true,
        }
    }
}

/// Results of analyzing one dynamic region.
#[derive(Clone, Debug)]
pub struct RegionAnalysis {
    /// Which region was analyzed.
    pub region: RegionId,
    /// Values (including the annotated roots) that are run-time constants.
    pub const_values: IdSet<InstId>,
    /// Region blocks whose multi-way terminator tests a run-time constant.
    pub const_branches: IdSet<BlockId>,
    /// Region merge blocks classified as constant merges.
    pub const_merges: IdSet<BlockId>,
    /// Reachability condition of each region block.
    pub reach: HashMap<BlockId, Cond>,
}

impl RegionAnalysis {
    /// Whether value `v` is a run-time constant.
    pub fn is_const(&self, v: InstId) -> bool {
        self.const_values.contains(v)
    }
}

/// Arity oracle for [`Cond`] simplification: successor count of each
/// constant branch.
struct Arity<'a> {
    f: &'a Function,
}

impl crate::cond::BranchArity for Arity<'_> {
    fn arity(&self, b: BlockId) -> u32 {
        self.f.blocks[b].term.successors().len() as u32
    }
}

/// Analyze one dynamic region of `f` (which must be in SSA form).
///
/// # Panics
/// Panics if `f` is not in SSA form.
pub fn analyze_region(f: &Function, region: RegionId, config: &AnalysisConfig) -> RegionAnalysis {
    assert!(f.is_ssa, "analysis requires SSA form");
    let r = &f.regions[region];

    // Optimistic start: every value defined in the region, plus the roots.
    let mut konst = IdSet::with_domain(f.insts.len());
    for &root in &r.const_roots {
        konst.insert(root);
    }
    for b in r.blocks.iter() {
        for &i in &f.blocks[b].insts {
            if f.kind(i).has_result() {
                konst.insert(i);
            }
        }
    }

    // Unrolled-loop scopes for boundary weakening.
    let scopes: LoopScopes = {
        let dom = dyncomp_ir::dom::DomTree::compute(f);
        let forest = dyncomp_ir::loops::find_loops(f, &dom);
        forest
            .loops
            .iter()
            .filter(|l| f.blocks[l.header].unrolled_header && r.blocks.contains(l.header))
            .map(|l| (l.blocks.clone(), l.header))
            .collect()
    };

    loop {
        let const_branches = find_const_branches(f, r, &konst);
        let reach = if config.use_reachability {
            compute_reach(f, r, &const_branches, &scopes)
        } else {
            // Without reachability every block is treated as plainly
            // reachable; no merge can prove exclusivity.
            r.blocks.iter().map(|b| (b, Cond::t())).collect()
        };
        let const_merges = classify_merges(f, r, &const_branches, &reach, &scopes, config);
        let new_konst = constants_fixpoint(f, r, &const_merges);
        if new_konst == konst {
            return RegionAnalysis {
                region,
                const_values: konst,
                const_branches,
                const_merges,
                reach,
            };
        }
        konst = new_konst;
    }
}

/// Region blocks whose terminator is a multi-way branch on a constant.
fn find_const_branches(f: &Function, r: &DynRegion, konst: &IdSet<InstId>) -> IdSet<BlockId> {
    let mut out = IdSet::with_domain(f.blocks.len());
    for b in r.blocks.iter() {
        let term = &f.blocks[b].term;
        let test = match term {
            Terminator::Branch { cond, .. } => Some(*cond),
            Terminator::Switch { val, .. } => Some(*val),
            _ => None,
        };
        if let Some(v) = test {
            if konst.contains(v) && term.successors().len() > 1 {
                out.insert(b);
            }
        }
    }
    out
}

/// Forward reachability fixpoint over the region subgraph.
fn compute_reach(
    f: &Function,
    r: &DynRegion,
    const_branches: &IdSet<BlockId>,
    scopes: &LoopScopes,
) -> HashMap<BlockId, Cond> {
    let arity = Arity { f };
    let rpo: Vec<BlockId> = dyncomp_ir::cfg::reverse_postorder(f)
        .into_iter()
        .filter(|&b| r.blocks.contains(b))
        .collect();
    let mut reach: HashMap<BlockId, Cond> = rpo.iter().map(|&b| (b, Cond::f())).collect();
    reach.insert(r.entry, Cond::t());

    // Iterate to a fixpoint; the widening in `Cond::or` bounds growth, and
    // the round cap guards against pathological ping-ponging by widening
    // whatever is still unstable.
    let max_rounds = rpo.len() * 4 + 8;
    for round in 0..max_rounds {
        let mut changed = false;
        for &b in &rpo {
            if b == r.entry {
                continue;
            }
            let mut acc = Cond::f();
            for &p in &rpo {
                let succs = f.blocks[p].term.successors();
                for (idx, &s) in succs.iter().enumerate() {
                    if s != b {
                        continue;
                    }
                    let base = reach[&p].clone();
                    let contrib = if const_branches.contains(p) {
                        base.and_literal(Literal {
                            branch: p,
                            succ: idx as u32,
                        })
                    } else {
                        base
                    };
                    let contrib = forget_at_boundary(scopes, contrib, p, b);
                    acc = acc.or(&contrib, &arity);
                }
            }
            if acc != reach[&b] {
                if round + 1 == max_rounds {
                    acc = Cond::t();
                }
                reach.insert(b, acc);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    reach
}

/// Per-predecessor arc condition into `b` (OR over parallel arcs).
fn pred_condition(
    f: &Function,
    const_branches: &IdSet<BlockId>,
    reach: &HashMap<BlockId, Cond>,
    scopes: &LoopScopes,
    p: BlockId,
    b: BlockId,
) -> Cond {
    let arity = Arity { f };
    let mut acc = Cond::f();
    let base = reach.get(&p).cloned().unwrap_or_else(Cond::f);
    for (idx, &s) in f.blocks[p].term.successors().iter().enumerate() {
        if s != b {
            continue;
        }
        let contrib = if const_branches.contains(p) {
            base.and_literal(Literal {
                branch: p,
                succ: idx as u32,
            })
        } else {
            base.clone()
        };
        let contrib = forget_at_boundary(scopes, contrib, p, b);
        acc = acc.or(&contrib, &arity);
    }
    acc
}

/// Classify each region merge as constant or not.
fn classify_merges(
    f: &Function,
    r: &DynRegion,
    const_branches: &IdSet<BlockId>,
    reach: &HashMap<BlockId, Cond>,
    scopes: &LoopScopes,
    config: &AnalysisConfig,
) -> IdSet<BlockId> {
    let mut merges = IdSet::with_domain(f.blocks.len());
    let preds = dyncomp_ir::cfg::Preds::compute(f);
    for b in r.blocks.iter() {
        // Unrolled loop headers are constant merges by fiat (§3.1): at run
        // time exactly one predecessor arc enters each unrolled copy.
        if f.blocks[b].unrolled_header {
            merges.insert(b);
            continue;
        }
        let ps: Vec<BlockId> = preds.of(b).to_vec();
        if ps.len() <= 1 {
            merges.insert(b); // trivially constant (no real merge)
            continue;
        }
        if !config.use_reachability {
            continue;
        }
        // A merge with predecessors outside the region (the region entry)
        // cannot be proven constant from in-region branch outcomes.
        if ps.iter().any(|p| !r.blocks.contains(*p)) {
            continue;
        }
        let conds: Vec<Cond> = ps
            .iter()
            .map(|&p| pred_condition(f, const_branches, reach, scopes, p, b))
            .collect();
        let all_exclusive = conds
            .iter()
            .enumerate()
            .all(|(i, a)| conds.iter().skip(i + 1).all(|c| a.exclusive(c)));
        if all_exclusive {
            merges.insert(b);
        }
    }
    merges
}

/// Greatest-fixpoint constants computation given a merge classification:
/// start from "everything constant" and delete violators until stable.
fn constants_fixpoint(f: &Function, r: &DynRegion, const_merges: &IdSet<BlockId>) -> IdSet<InstId> {
    let mut konst = IdSet::with_domain(f.insts.len());
    for &root in &r.const_roots {
        konst.insert(root);
    }
    let mut region_insts: Vec<(BlockId, InstId)> = Vec::new();
    for b in r.blocks.iter() {
        for &i in &f.blocks[b].insts {
            if f.kind(i).has_result() {
                konst.insert(i);
                region_insts.push((b, i));
            }
        }
    }
    let roots: IdSet<InstId> = r.const_roots.iter().copied().collect();

    loop {
        let mut changed = false;
        for &(b, i) in &region_insts {
            if !konst.contains(i) || roots.contains(i) {
                continue;
            }
            let ok = match f.kind(i) {
                InstKind::Phi(ins) => {
                    const_merges.contains(b) && ins.iter().all(|(_, v)| konst.contains(*v))
                }
                InstKind::Load { addr, dynamic, .. } => !*dynamic && konst.contains(*addr),
                k => k.is_specializable_op() && k.operands().iter().all(|v| konst.contains(*v)),
            };
            if !ok {
                konst.remove(i);
                changed = true;
            }
        }
        if !changed {
            return konst;
        }
    }
}
