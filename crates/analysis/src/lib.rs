//! # dyncomp-analysis
//!
//! The static analyses of *"Fast, Effective Dynamic Compilation"* (PLDI
//! 1996), §3.1 / Appendix A: identification of **derived run-time
//! constants** within a dynamic region, driven by a pair of interconnected
//! dataflow analyses executed to a combined fixed point —
//!
//! 1. the **run-time constants analysis** ([`rtc`]), a forward analysis
//!    over SSA that propagates the programmer-annotated constant roots
//!    through idempotent, side-effect-free, non-trapping operations; and
//! 2. the **reachability analysis** ([`cond`]), which computes, for every
//!    program point, a disjunction of conjunctions of constant-branch
//!    outcomes (`B→S` literals in CNF-set form) and supplies the
//!    *mutual-exclusion* test that lets merges in **unstructured** control
//!    flow be classified as constant merges.
//!
//! [`unroll`] implements the §2 legality check for `unrolled` loops.
//!
//! ## Example
//!
//! ```
//! use dyncomp_ir::{Function, InstKind, Terminator, Ty, BinOp, DynRegion, IdSet};
//! use dyncomp_analysis::{analyze_region, AnalysisConfig};
//!
//! // A one-block region: root k, derived constant k*8, dynamic param p.
//! let mut f = Function::new("demo", vec![Ty::Int, Ty::Int], Ty::Int);
//! let e = f.entry;
//! let k = f.append(e, InstKind::Param(0));
//! let body = f.add_block();
//! f.blocks[e].term = Terminator::Jump(body);
//! let p = f.append(body, InstKind::Param(1));
//! let eight = f.const_int(body, 8);
//! let k8 = f.bin(body, BinOp::Mul, k, eight);
//! let sum = f.bin(body, BinOp::Add, k8, p);
//! f.blocks[body].term = Terminator::Return(Some(sum));
//! let region = f.regions.push(DynRegion {
//!     entry: body,
//!     blocks: [body].into_iter().collect::<IdSet<_>>(),
//!     const_roots: vec![k],
//!     key_roots: vec![],
//! });
//! f.is_ssa = true;
//!
//! let a = analyze_region(&f, region, &AnalysisConfig::default());
//! assert!(a.is_const(k8));   // derived from the annotated root
//! assert!(!a.is_const(sum)); // depends on the dynamic parameter
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cond;
pub mod rtc;
pub mod unroll;

pub use cond::{Cond, Literal};
pub use rtc::{analyze_region, AnalysisConfig, RegionAnalysis};
pub use unroll::{check_unrollable, UnrollError};

#[cfg(test)]
mod tests;
