//! Optimizer tests: unit tests per pass plus semantic preservation checks
//! through the reference interpreter.

use crate::*;
use dyncomp_frontend::{compile, LowerOptions};
use dyncomp_ir::eval::{EvalOutcome, Evaluator};
use dyncomp_ir::{Function, Module, SlotPath};

fn build_ssa(src: &str) -> Module {
    let mut m = compile(src, &LowerOptions::default()).unwrap().module;
    for f in m.funcs.iter_mut() {
        dyncomp_ir::ssa::construct_ssa(f);
    }
    m
}

fn run(m: &Module, func: &str, args: &[u64]) -> u64 {
    let fid = m.func_by_name(func).unwrap();
    let mut ev = Evaluator::new(m);
    match ev.call(fid, args).unwrap() {
        EvalOutcome::Return(v) => v.unwrap_or(0),
    }
}

fn opt_all(m: &mut Module) -> OptStats {
    let mut total = OptStats::default();
    let opts = OptOptions {
        cfg_simplify: true,
        hole_scope: None,
    };
    for f in m.funcs.iter_mut() {
        let s = optimize(f, &opts);
        dyncomp_ir::verify::verify(f).expect("verifies after optimization");
        total.add_for_test(&s);
    }
    total
}

impl OptStats {
    fn add_for_test(&mut self, o: &OptStats) {
        self.folded += o.folded;
        self.branches_folded += o.branches_folded;
        self.copies_propagated += o.copies_propagated;
        self.dead_removed += o.dead_removed;
        self.cse_hits += o.cse_hits;
        self.cfg_simplified += o.cfg_simplified;
    }
}

#[test]
fn folds_constant_expressions() {
    let mut m = build_ssa("int f() { return (2 + 3) * 4 - 6 / 2; }");
    let stats = opt_all(&mut m);
    assert!(stats.folded > 0);
    assert_eq!(run(&m, "f", &[]), 17);
    // After folding + DCE the function should be a single return of a
    // constant.
    let f = &m.funcs[dyncomp_ir::FuncId(0)];
    let live: Vec<_> = dyncomp_ir::cfg::reachable(f).iter().collect();
    let inst_count: usize = live.iter().map(|&b| f.blocks[b].insts.len()).sum();
    assert_eq!(inst_count, 1, "only the constant remains: {f}");
}

#[test]
fn folds_constant_branches_and_prunes() {
    let mut m = build_ssa("int f(int x) { if (1 < 2) return x; else return x * 1000; }");
    let stats = opt_all(&mut m);
    assert!(stats.branches_folded > 0);
    assert_eq!(run(&m, "f", &[5]), 5);
    let f = &m.funcs[dyncomp_ir::FuncId(0)];
    for b in dyncomp_ir::cfg::reachable(f).iter() {
        assert!(
            !matches!(f.blocks[b].term, dyncomp_ir::Terminator::Branch { .. }),
            "no branches remain"
        );
    }
}

#[test]
fn folds_constant_switch() {
    let mut m =
        build_ssa("int f() { switch (2) { case 1: return 10; case 2: return 20; } return 0; }");
    opt_all(&mut m);
    assert_eq!(run(&m, "f", &[]), 20);
}

#[test]
fn algebraic_identities() {
    let mut m =
        build_ssa("int f(int x) { return (x + 0) * 1 + (x - x) + (x ^ x) + (x / 1) - (0 * x); }");
    opt_all(&mut m);
    assert_eq!(run(&m, "f", &[21]), 42);
    // x + x remains; everything else folds away. Expect few instructions.
    let f = &m.funcs[dyncomp_ir::FuncId(0)];
    let inst_count: usize = dyncomp_ir::cfg::reachable(f)
        .iter()
        .map(|b| f.blocks[b].insts.len())
        .sum();
    assert!(inst_count <= 3, "got {inst_count}: {f}");
}

#[test]
fn division_by_zero_is_not_folded() {
    let mut m = build_ssa("int f() { return 1 / 0; }");
    opt_all(&mut m);
    let fid = m.func_by_name("f").unwrap();
    let mut ev = Evaluator::new(&m);
    assert!(
        ev.call(fid, &[]).is_err(),
        "trap preserved, not folded away"
    );
}

#[test]
fn cse_unifies_repeated_expressions() {
    let mut m = build_ssa("int f(int a, int b) { return (a*b + 1) + (a*b + 1) + (b*a); }");
    let stats = opt_all(&mut m);
    assert!(
        stats.cse_hits >= 2,
        "a*b appears 3x (once commuted): {stats:?}"
    );
    assert_eq!(run(&m, "f", &[3, 4]), 13 + 13 + 12);
}

#[test]
fn dce_keeps_side_effects() {
    let src = r#"
        int sink = 0;
        int f(int x) {
            int unused = x * 99;
            sink = x;
            return 7;
        }
    "#;
    let mut m = build_ssa(src);
    let stats = opt_all(&mut m);
    assert!(stats.dead_removed > 0);
    assert_eq!(run(&m, "f", &[3]), 7);
    // The store to the global must remain.
    let f = &m.funcs[m.func_by_name("f").unwrap()];
    let has_store = dyncomp_ir::cfg::reachable(f)
        .iter()
        .flat_map(|b| f.blocks[b].insts.clone())
        .any(|i| matches!(f.kind(i), InstKind::Store { .. }));
    assert!(has_store);
}

#[test]
fn loops_optimize_and_preserve_semantics() {
    let src = r#"
        int f(int n) {
            int s = 0;
            int i;
            for (i = 0; i < n; i++) {
                s += i * 2 + (3 - 3);
            }
            return s;
        }
    "#;
    let mut m = build_ssa(src);
    opt_all(&mut m);
    assert_eq!(run(&m, "f", &[5]), 20);
}

#[test]
fn cfg_simplification_merges_chains() {
    let mut m = build_ssa("int f(int x) { { { int y = x; { return y + 1; } } } }");
    let stats = opt_all(&mut m);
    let f = &m.funcs[dyncomp_ir::FuncId(0)];
    let live = dyncomp_ir::cfg::reachable(f);
    assert_eq!(
        live.len(),
        1,
        "straight-line chain collapses to one block: {f}"
    );
    let _ = stats;
    assert_eq!(run(&m, "f", &[4]), 5);
}

#[test]
fn region_metadata_survives_optimization() {
    let src = r#"
        int f(int k, int x) {
            dynamicRegion (k) {
                int t = k * 8;
                return t + x;
            }
        }
    "#;
    let mut m = build_ssa(src);
    opt_all(&mut m);
    let f = &m.funcs[dyncomp_ir::FuncId(0)];
    assert_eq!(f.regions.len(), 1);
    let r = &f.regions[dyncomp_ir::RegionId(0)];
    let live = dyncomp_ir::cfg::reachable(f);
    assert!(live.contains(r.entry), "region entry block survives");
    // Roots still name placed values.
    for &root in &r.const_roots {
        let placed = f.iter_blocks().any(|(_, blk)| blk.insts.contains(&root));
        assert!(placed, "root {root} still placed");
    }
    assert_eq!(run(&m, "f", &[2, 5]), 21);
}

#[test]
fn hole_barrier_blocks_propagation_outside_scope() {
    // Hand-build: template block defines a hole and copies it; a block
    // outside uses the copy. Copy propagation must not rewrite the outside
    // use to the hole, but may rewrite the inside one.
    use dyncomp_ir::{InstKind, Terminator, Ty};
    let mut f = Function::new("h", vec![], Ty::Int);
    let e = f.entry;
    let tmpl = f.add_block();
    let outside = f.add_block();
    f.blocks[e].term = Terminator::Jump(tmpl);
    let hole = f.append(
        tmpl,
        InstKind::Hole {
            slot: SlotPath::stat(0),
            float: false,
        },
    );
    let copy = f.append(tmpl, InstKind::Copy(hole));
    let one = f.const_int(tmpl, 1);
    let use_in = f.bin(tmpl, dyncomp_ir::BinOp::Add, copy, one);
    f.blocks[tmpl].term = Terminator::Jump(outside);
    let use_out = f.bin(outside, dyncomp_ir::BinOp::Add, copy, one);
    let sum = f.bin(outside, dyncomp_ir::BinOp::Add, use_in, use_out);
    f.blocks[outside].term = Terminator::Return(Some(sum));
    f.is_ssa = true;

    let scope: dyncomp_ir::IdSet<_> = [tmpl].into_iter().collect();
    copy_propagate(&mut f, Some(&scope));
    // Inside use now reads the hole directly.
    assert_eq!(
        *f.kind(use_in),
        InstKind::Bin(dyncomp_ir::BinOp::Add, hole, one)
    );
    // Outside use still reads the copy.
    assert_eq!(
        *f.kind(use_out),
        InstKind::Bin(dyncomp_ir::BinOp::Add, copy, one)
    );
}

#[test]
fn phi_with_identical_inputs_folds() {
    let mut m = build_ssa("int f(int p) { int x; if (p) x = 9; else x = 9; return x; }");
    opt_all(&mut m);
    assert_eq!(run(&m, "f", &[0]), 9);
    assert_eq!(run(&m, "f", &[1]), 9);
    let f = &m.funcs[dyncomp_ir::FuncId(0)];
    let live = dyncomp_ir::cfg::reachable(f);
    let phis = live
        .iter()
        .flat_map(|b| f.blocks[b].insts.clone())
        .filter(|&i| matches!(f.kind(i), InstKind::Phi(_)))
        .count();
    assert_eq!(phis, 0, "φ(9,9) folded: {f}");
}

#[test]
fn optimizer_is_idempotent() {
    let src = "int f(int a) { int b = a * 2 + 3 * 4; return b + b; }";
    let mut m = build_ssa(src);
    opt_all(&mut m);
    let snapshot = format!("{}", m.funcs[dyncomp_ir::FuncId(0)]);
    let stats = opt_all(&mut m);
    assert_eq!(stats, OptStats::default(), "second run is a no-op");
    assert_eq!(snapshot, format!("{}", m.funcs[dyncomp_ir::FuncId(0)]));
}

#[test]
fn semantics_preserved_on_mixed_program() {
    let src = r#"
        int g(int a) { return a * 3; }
        int f(int n) {
            int acc = 0;
            int i;
            for (i = 0; i < n; i++) {
                switch (i & 3) {
                    case 0: acc += g(i); break;
                    case 1: acc += i * 1; break;
                    case 2: acc += 2 + 2;
                    default: acc -= 1;
                }
            }
            return acc;
        }
    "#;
    let mut before = build_ssa(src);
    let expect: Vec<u64> = (0..12).map(|n| run(&before, "f", &[n])).collect();
    opt_all(&mut before);
    let after: Vec<u64> = (0..12).map(|n| run(&before, "f", &[n])).collect();
    assert_eq!(expect, after);
}

mod cfg_simplify_unit {
    use super::*;
    use dyncomp_ir::{BinOp, InstKind, Terminator, Ty};

    /// entry --cond--> fwd1 / fwd2 (both empty) --> join(φ-free) --> ret
    #[test]
    fn threads_jumps_through_empty_blocks() {
        let mut f = Function::new("t", vec![Ty::Int], Ty::Int);
        let entry = f.entry;
        let x = f.append(entry, InstKind::Param(0));
        let fwd1 = f.add_block();
        let fwd2 = f.add_block();
        let tail = f.add_block();
        f.blocks[entry].term = Terminator::Branch {
            cond: x,
            then_b: fwd1,
            else_b: fwd2,
        };
        f.blocks[fwd1].term = Terminator::Jump(tail);
        f.blocks[fwd2].term = Terminator::Jump(tail);
        let c = f.const_int(tail, 9);
        f.blocks[tail].term = Terminator::Return(Some(c));
        dyncomp_ir::ssa::construct_ssa(&mut f);

        let s = simplify_cfg(&mut f);
        assert!(s.cfg_simplified >= 1, "{s:?}");
        // Both arms of the branch now point straight at the tail; the
        // forwarding blocks were pruned.
        match &f.blocks[entry].term {
            Terminator::Branch { then_b, else_b, .. } => {
                assert_eq!(then_b, else_b);
            }
            t => panic!("unexpected terminator {t:?}"),
        }
        let mut m = Module::new();
        let fid = m.funcs.push(f);
        let mut ev = Evaluator::new(&m);
        assert_eq!(ev.call(fid, &[1]).unwrap(), EvalOutcome::Return(Some(9)));
    }

    /// Forwarding into a φ-bearing block must NOT be threaded blindly —
    /// φ operands are keyed by predecessor block.
    #[test]
    fn does_not_thread_into_phi_targets() {
        let src = r#"
            int pick(int c) {
                int r;
                if (c) { r = 10; } else { r = 20; }
                return r + 1;
            }
        "#;
        let mut m = build_ssa(src);
        for f in m.funcs.iter_mut() {
            simplify_cfg(f);
            dyncomp_ir::verify::verify(f).expect("still verifies");
        }
        assert_eq!(run(&m, "pick", &[1]), 11);
        assert_eq!(run(&m, "pick", &[0]), 21);
    }

    #[test]
    fn self_loop_is_not_treated_as_forwarding() {
        let mut f = Function::new("spin", vec![Ty::Int], Ty::Int);
        let entry = f.entry;
        let x = f.append(entry, InstKind::Param(0));
        let spin = f.add_block();
        let out = f.add_block();
        f.blocks[entry].term = Terminator::Branch {
            cond: x,
            then_b: spin,
            else_b: out,
        };
        f.blocks[spin].term = Terminator::Jump(spin); // empty self-loop
        let c = f.const_int(out, 3);
        f.blocks[out].term = Terminator::Return(Some(c));
        dyncomp_ir::ssa::construct_ssa(&mut f);
        simplify_cfg(&mut f);
        dyncomp_ir::verify::verify(&f).unwrap();
        // The self-loop must survive as a self-loop (not become a jump into
        // a pruned block).
        let mut m = Module::new();
        let fid = m.funcs.push(f);
        let mut ev = Evaluator::new(&m);
        assert_eq!(ev.call(fid, &[0]).unwrap(), EvalOutcome::Return(Some(3)));
    }

    #[test]
    fn merges_straight_line_chains_and_counts() {
        let mut f = Function::new("chain", vec![Ty::Int], Ty::Int);
        let entry = f.entry;
        let x = f.append(entry, InstKind::Param(0));
        let b1 = f.add_block();
        let b2 = f.add_block();
        let one = f.const_int(b1, 1);
        let y = f.bin(b1, BinOp::Add, x, one);
        let two = f.const_int(b2, 2);
        let z = f.bin(b2, BinOp::Mul, y, two);
        f.blocks[entry].term = Terminator::Jump(b1);
        f.blocks[b1].term = Terminator::Jump(b2);
        f.blocks[b2].term = Terminator::Return(Some(z));
        dyncomp_ir::ssa::construct_ssa(&mut f);

        // One call merges one link of the chain per sweep; iterate to the
        // fixed point the driver would reach.
        let mut total = 0;
        loop {
            let s = simplify_cfg(&mut f);
            if s.cfg_simplified == 0 {
                break;
            }
            total += s.cfg_simplified;
        }
        assert!(total >= 2, "both links merge: {total}");
        let live = dyncomp_ir::cfg::reachable(&f);
        assert_eq!(live.iter().count(), 1, "collapsed to a single block");
        let mut m = Module::new();
        let fid = m.funcs.push(f);
        let mut ev = Evaluator::new(&m);
        assert_eq!(ev.call(fid, &[20]).unwrap(), EvalOutcome::Return(Some(42)));
    }

    #[test]
    fn stats_distinguish_pass_contributions() {
        let src = r#"
            int f(int x) {
                int a = 3 * 4;        /* folded */
                int b = x + 0;        /* algebraic */
                int dead = x * 99;    /* never used after prop */
                int c = x * 7;
                int d = x * 7;        /* CSE */
                if (1) { return a + b + c + d; }
                return dead;
            }
        "#;
        let mut m = build_ssa(src);
        let s = opt_all(&mut m);
        assert!(s.folded >= 2, "{s:?}");
        assert!(s.branches_folded >= 1, "{s:?}");
        assert!(s.cse_hits >= 1, "{s:?}");
        assert!(s.dead_removed >= 1, "{s:?}");
        assert_eq!(run(&m, "f", &[5]), 12 + 5 + 35 + 35);
    }
}

#[test]
fn folding_one_phi_keeps_remaining_phis_at_block_start() {
    // Regression (found by the random-program property test): folding a φ
    // to a Copy/Const in place left a later φ in the same block behind a
    // non-φ instruction, breaking the φ-prefix invariant.
    use dyncomp_ir::{InstKind, Terminator, Ty};
    let mut f = Function::new("t", vec![Ty::Int], Ty::Int);
    let entry = f.entry;
    let x = f.append(entry, InstKind::Param(0));
    let l = f.add_block();
    let r = f.add_block();
    let j = f.add_block();
    f.blocks[entry].term = Terminator::Branch {
        cond: x,
        then_b: l,
        else_b: r,
    };
    let c1 = f.const_int(l, 5);
    let a1 = f.bin(l, dyncomp_ir::BinOp::Add, x, c1);
    f.blocks[l].term = Terminator::Jump(j);
    let c2 = f.const_int(r, 5);
    let a2 = f.bin(r, dyncomp_ir::BinOp::Mul, x, c2);
    f.blocks[r].term = Terminator::Jump(j);
    // φ1 folds (both operands are the same literal); φ2 does not.
    let p1 = f.append(j, InstKind::Phi(vec![(l, c1), (r, c2)]));
    let p2 = f.append(j, InstKind::Phi(vec![(l, a1), (r, a2)]));
    let s = f.bin(j, dyncomp_ir::BinOp::Add, p1, p2);
    f.blocks[j].term = Terminator::Return(Some(s));
    f.is_ssa = true;
    dyncomp_ir::verify::verify(&f).expect("valid input");

    let stats = fold_constants(&mut f);
    assert!(stats.folded >= 1);
    dyncomp_ir::verify::verify(&f).expect("φ prefix preserved after folding");

    let mut m = Module::new();
    let fid = m.funcs.push(f);
    let mut ev = Evaluator::new(&m);
    assert_eq!(
        ev.call(fid, &[3]).unwrap(),
        EvalOutcome::Return(Some(5 + 8))
    );
    assert_eq!(ev.call(fid, &[0]).unwrap(), EvalOutcome::Return(Some(5)));
}
