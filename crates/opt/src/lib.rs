//! # dyncomp-opt
//!
//! Standard global optimizations over `dyncomp-ir` SSA, applied by the
//! static compiler both before and after dynamic-region splitting (§3.3 of
//! *"Fast, Effective Dynamic Compilation"*, PLDI 1996).
//!
//! Post-split runs must respect the paper's three hole rules:
//!
//! 1. instructions containing holes never move out of template code — we
//!    guarantee this structurally by doing no cross-block code motion
//!    after splitting (CFG simplification is pre-split only);
//! 2. hole values never propagate outside the dynamic region —
//!    [`copy_propagate`] takes the template block set as a barrier;
//! 3. holes for unrolled-loop induction variables are not loop-invariant —
//!    we perform no loop-invariant code motion, so this holds trivially.
//!
//! Passes: [`fold_constants`] (constant folding + algebraic
//! simplification + static branch folding), [`copy_propagate`],
//! [`eliminate_dead_code`], [`local_cse`], and pre-split
//! [`simplify_cfg`]. [`optimize`] runs them to a fixpoint and reports
//! [`OptStats`].

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use dyncomp_ir::{BinOp, BlockId, Const, Function, IdSet, InstId, InstKind, Terminator};
use std::collections::HashMap;

/// Counters of what the optimizer did (one `optimize` call).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OptStats {
    /// Instructions folded to constants or simplified algebraically.
    pub folded: usize,
    /// Branches/switches on compile-time constants rewritten to jumps.
    pub branches_folded: usize,
    /// Uses rewritten by copy propagation.
    pub copies_propagated: usize,
    /// Dead instructions removed.
    pub dead_removed: usize,
    /// Redundant computations unified by local CSE.
    pub cse_hits: usize,
    /// Blocks merged / jumps threaded by CFG simplification.
    pub cfg_simplified: usize,
}

impl OptStats {
    fn add(&mut self, o: &OptStats) {
        self.folded += o.folded;
        self.branches_folded += o.branches_folded;
        self.copies_propagated += o.copies_propagated;
        self.dead_removed += o.dead_removed;
        self.cse_hits += o.cse_hits;
        self.cfg_simplified += o.cfg_simplified;
    }

    fn any(&self) -> bool {
        *self != OptStats::default()
    }
}

/// Optimization options.
#[derive(Clone, Default)]
pub struct OptOptions {
    /// Allow CFG restructuring (block merging, jump threading). Must be
    /// `false` after region splitting, where block identity is load-bearing
    /// (template blocks, markers, section boundaries).
    pub cfg_simplify: bool,
    /// Hole-propagation barrier: when set, values defined by
    /// [`InstKind::Hole`] instructions never replace uses outside this
    /// block set (the template blocks).
    pub hole_scope: Option<IdSet<BlockId>>,
}

/// Run all passes to a fixpoint.
pub fn optimize(f: &mut Function, opts: &OptOptions) -> OptStats {
    let mut total = OptStats::default();
    for _ in 0..50 {
        let mut round = OptStats::default();
        round.add(&fold_constants(f));
        round.add(&copy_propagate(f, opts.hole_scope.as_ref()));
        round.add(&local_cse(f));
        round.add(&eliminate_dead_code(f));
        if opts.cfg_simplify {
            round.add(&simplify_cfg(f));
        }
        let progressed = round.any();
        total.add(&round);
        if !progressed {
            break;
        }
    }
    total
}

fn placed_blocks(f: &Function) -> Vec<BlockId> {
    dyncomp_ir::cfg::reachable(f).iter().collect()
}

/// Constant folding, algebraic identities, and static branch folding.
pub fn fold_constants(f: &mut Function) -> OptStats {
    let mut stats = OptStats::default();
    for b in placed_blocks(f) {
        let insts = f.blocks[b].insts.clone();
        let mut phi_folded = false;
        for i in insts {
            let kind = f.kind(i).clone();
            let new = match &kind {
                InstKind::Un(op, a) => f.as_const(*a).and_then(|c| op.eval(c)).map(InstKind::Const),
                InstKind::Bin(op, a, b2) => fold_bin(f, *op, *a, *b2),
                InstKind::CallIntrinsic { which, args } => {
                    let consts: Option<Vec<Const>> = args.iter().map(|&a| f.as_const(a)).collect();
                    consts.and_then(|cs| which.eval(&cs)).map(InstKind::Const)
                }
                InstKind::Phi(ins) => {
                    // All operands identical (or the φ itself): forward.
                    let mut srcs: Vec<InstId> =
                        ins.iter().map(|(_, v)| *v).filter(|v| *v != i).collect();
                    srcs.dedup();
                    if srcs.len() == 1 {
                        Some(InstKind::Copy(srcs[0]))
                    } else {
                        // All operands the same literal constant: the φ is
                        // that constant (a fresh materialization; copying
                        // one operand would break dominance).
                        let consts: Option<Vec<Const>> =
                            srcs.iter().map(|&v| f.as_const(v)).collect();
                        match consts.as_deref() {
                            Some([first, rest @ ..]) if rest.iter().all(|c| c == first) => {
                                Some(InstKind::Const(*first))
                            }
                            _ => None,
                        }
                    }
                }
                _ => None,
            };
            if let Some(nk) = new {
                phi_folded |= matches!(kind, InstKind::Phi(_));
                let ty = f.infer_ty(&nk);
                f.insts[i].kind = nk;
                f.insts[i].ty = ty;
                stats.folded += 1;
            }
        }
        if phi_folded {
            // A φ became a Copy/Const in place; restore the invariant that
            // φs form a prefix of the block. Stable, so the folded value
            // still precedes every non-φ instruction that uses it (and the
            // remaining φs read predecessor-end values, which a same-block
            // definition satisfies even on self-loops).
            let list = &mut f.blocks[b].insts;
            list.sort_by_key(|&i| !matches!(f.insts[i].kind, InstKind::Phi(_)));
        }
        // Fold terminators on constants.
        match f.blocks[b].term.clone() {
            Terminator::Branch {
                cond,
                then_b,
                else_b,
            } => {
                if let Some(c) = f.as_const(cond) {
                    f.blocks[b].term =
                        Terminator::Jump(if c.is_truthy() { then_b } else { else_b });
                    stats.branches_folded += 1;
                } else if then_b == else_b {
                    f.blocks[b].term = Terminator::Jump(then_b);
                    stats.branches_folded += 1;
                }
            }
            Terminator::Switch {
                val,
                cases,
                default,
            } => {
                if let Some(Const::Int(v)) = f.as_const(val) {
                    let target = cases
                        .iter()
                        .find(|(c, _)| *c == v)
                        .map(|(_, t)| *t)
                        .unwrap_or(default);
                    f.blocks[b].term = Terminator::Jump(target);
                    stats.branches_folded += 1;
                }
            }
            _ => {}
        }
    }
    stats
}

fn fold_bin(f: &Function, op: BinOp, a: InstId, b: InstId) -> Option<InstKind> {
    let ca = f.as_const(a);
    let cb = f.as_const(b);
    if let (Some(x), Some(y)) = (ca, cb) {
        if let Some(r) = op.eval(x, y) {
            return Some(InstKind::Const(r));
        }
    }
    // Algebraic identities (integer only; float identities are unsound
    // under NaN/-0.0).
    let int0 = |c: Option<Const>| matches!(c, Some(Const::Int(0)));
    let int1 = |c: Option<Const>| matches!(c, Some(Const::Int(1)));
    match op {
        BinOp::Add => {
            if int0(ca) {
                return Some(InstKind::Copy(b));
            }
            if int0(cb) {
                return Some(InstKind::Copy(a));
            }
        }
        BinOp::Sub => {
            if int0(cb) {
                return Some(InstKind::Copy(a));
            }
            if a == b {
                return Some(InstKind::Const(Const::Int(0)));
            }
        }
        BinOp::Mul => {
            if int1(ca) {
                return Some(InstKind::Copy(b));
            }
            if int1(cb) {
                return Some(InstKind::Copy(a));
            }
            if int0(ca) || int0(cb) {
                return Some(InstKind::Const(Const::Int(0)));
            }
        }
        BinOp::And => {
            if int0(ca) || int0(cb) {
                return Some(InstKind::Const(Const::Int(0)));
            }
            if a == b {
                return Some(InstKind::Copy(a));
            }
        }
        BinOp::Or => {
            if int0(ca) {
                return Some(InstKind::Copy(b));
            }
            if int0(cb) {
                return Some(InstKind::Copy(a));
            }
            if a == b {
                return Some(InstKind::Copy(a));
            }
        }
        BinOp::Xor => {
            if int0(cb) {
                return Some(InstKind::Copy(a));
            }
            if int0(ca) {
                return Some(InstKind::Copy(b));
            }
            if a == b {
                return Some(InstKind::Const(Const::Int(0)));
            }
        }
        BinOp::Shl | BinOp::ShrS | BinOp::ShrU if int0(cb) => {
            return Some(InstKind::Copy(a));
        }
        BinOp::DivS | BinOp::DivU if int1(cb) => {
            return Some(InstKind::Copy(a));
        }
        _ => {}
    }
    None
}

/// Replace uses of `Copy(x)` with `x` directly, respecting the hole
/// barrier: a chain ending at a [`InstKind::Hole`] is only forwarded to
/// uses inside `hole_scope`.
pub fn copy_propagate(f: &mut Function, hole_scope: Option<&IdSet<BlockId>>) -> OptStats {
    let mut stats = OptStats::default();
    // Resolve copy chains.
    let mut target: HashMap<InstId, InstId> = HashMap::new();
    for (i, inst) in f.insts.iter_enumerated() {
        if let InstKind::Copy(src) = inst.kind {
            target.insert(i, src);
        }
    }
    let resolve = |mut v: InstId| {
        let mut seen = 0;
        while let Some(&t) = target.get(&v) {
            v = t;
            seen += 1;
            if seen > target.len() {
                break; // cycle safety (malformed input)
            }
        }
        v
    };
    for b in placed_blocks(f) {
        let insts = f.blocks[b].insts.clone();
        let in_scope = hole_scope.map(|s| s.contains(b));
        for i in insts {
            let mut kind = f.kind(i).clone();
            let mut changed = false;
            kind.map_operands(|v| {
                let r = resolve(v);
                if r == v {
                    return v;
                }
                // Hole barrier: never forward a hole value to a use outside
                // the template blocks.
                if matches!(f.kind(r), InstKind::Hole { .. }) && in_scope == Some(false) {
                    return v;
                }
                changed = true;
                r
            });
            if changed {
                f.insts[i].kind = kind;
                stats.copies_propagated += 1;
            }
        }
        let mut term = f.blocks[b].term.clone();
        let mut changed = false;
        term.map_operands(|v| {
            let r = resolve(v);
            if r == v {
                return v;
            }
            if matches!(f.kind(r), InstKind::Hole { .. }) && in_scope == Some(false) {
                return v;
            }
            changed = true;
            r
        });
        if changed {
            f.blocks[b].term = term;
            stats.copies_propagated += 1;
        }
    }
    stats
}

/// Remove pure instructions whose results are unused.
pub fn eliminate_dead_code(f: &mut Function) -> OptStats {
    let mut stats = OptStats::default();
    loop {
        let mut used: IdSet<InstId> = IdSet::with_domain(f.insts.len());
        for b in placed_blocks(f) {
            for &i in &f.blocks[b].insts {
                for v in f.kind(i).operands() {
                    used.insert(v);
                }
            }
            for v in f.blocks[b].term.operands() {
                used.insert(v);
            }
        }
        // Region roots are observed by the specializer and the runtime.
        for r in f.regions.iter() {
            for &v in r.const_roots.iter().chain(r.key_roots.iter()) {
                used.insert(v);
            }
        }
        let mut removed = 0;
        for b in placed_blocks(f) {
            let before = f.blocks[b].insts.len();
            let keep: Vec<InstId> = f.blocks[b]
                .insts
                .iter()
                .copied()
                .filter(|&i| {
                    let k = f.kind(i);
                    k.has_side_effect() || !k.has_result() || used.contains(i)
                })
                .collect();
            removed += before - keep.len();
            f.blocks[b].insts = keep;
        }
        if removed == 0 {
            break;
        }
        stats.dead_removed += removed;
    }
    stats
}

/// Local common-subexpression elimination (within each block).
pub fn local_cse(f: &mut Function) -> OptStats {
    let mut stats = OptStats::default();
    for b in placed_blocks(f) {
        let mut seen: HashMap<String, InstId> = HashMap::new();
        let insts = f.blocks[b].insts.clone();
        for i in insts {
            let kind = f.kind(i).clone();
            let key = match &kind {
                InstKind::Bin(op, a, b2) => {
                    // Normalize commutative operands.
                    let (x, y) = if op.is_commutative() && b2 < a {
                        (*b2, *a)
                    } else {
                        (*a, *b2)
                    };
                    Some(format!("bin:{op:?}:{x}:{y}"))
                }
                InstKind::Un(op, a) => Some(format!("un:{op:?}:{a}")),
                InstKind::Const(Const::Int(v)) => Some(format!("ci:{v}")),
                InstKind::Const(Const::Float(v)) => Some(format!("cf:{:x}", v.to_bits())),
                InstKind::GlobalAddr(g) => Some(format!("ga:{g}")),
                InstKind::FrameAddr(v) => Some(format!("fa:{v}")),
                _ => None,
            };
            let Some(key) = key else { continue };
            match seen.get(&key) {
                Some(&prev) => {
                    f.insts[i].kind = InstKind::Copy(prev);
                    stats.cse_hits += 1;
                }
                None => {
                    seen.insert(key, i);
                }
            }
        }
    }
    stats
}

/// CFG simplification: forward empty blocks, merge single-pred/single-succ
/// chains. Pre-split only (block identity is significant afterwards).
pub fn simplify_cfg(f: &mut Function) -> OptStats {
    let mut stats = OptStats::default();

    // Protected blocks: entry, region entries/bodies' special roles.
    let mut protected = IdSet::with_domain(f.blocks.len());
    protected.insert(f.entry);
    for r in f.regions.iter() {
        protected.insert(r.entry);
    }
    for (b, blk) in f.iter_blocks() {
        if blk.unrolled_header || blk.marker.is_some() {
            protected.insert(b);
        }
        if matches!(
            blk.term,
            Terminator::EnterRegion { .. } | Terminator::EndSetup { .. }
        ) {
            protected.insert(b);
        }
    }

    // 1. Thread jumps through empty forwarding blocks.
    let mut forward: HashMap<BlockId, BlockId> = HashMap::new();
    for (b, blk) in f.iter_blocks() {
        if protected.contains(b) || !blk.insts.is_empty() {
            continue;
        }
        if let Terminator::Jump(t) = blk.term {
            if t != b {
                forward.insert(b, t);
            }
        }
    }
    let resolve = |mut b: BlockId| {
        let mut n = 0;
        while let Some(&t) = forward.get(&b) {
            b = t;
            n += 1;
            if n > forward.len() {
                break;
            }
        }
        b
    };
    // A forwarding block whose target holds φs cannot be bypassed blindly
    // (φ operands are keyed by predecessor). Only bypass when the target
    // has no φs.
    let has_phi: Vec<bool> = f
        .blocks
        .ids()
        .map(|b| {
            f.blocks[b]
                .insts
                .first()
                .map(|&i| matches!(f.kind(i), InstKind::Phi(_)))
                .unwrap_or(false)
        })
        .collect();
    for b in f.blocks.ids().collect::<Vec<_>>() {
        let mut term = f.blocks[b].term.clone();
        let mut changed = false;
        term.map_successors(|s| {
            let r = resolve(s);
            if r != s && !has_phi[r.index()] {
                changed = true;
                r
            } else {
                s
            }
        });
        if changed {
            f.blocks[b].term = term;
            stats.cfg_simplified += 1;
        }
    }

    // 2. Merge b -> t when b's only successor is t and t's only
    //    (reachable) predecessor is b.
    let live = dyncomp_ir::cfg::reachable(f);
    let preds = dyncomp_ir::cfg::Preds::compute(f);
    for b in f.blocks.ids().collect::<Vec<_>>() {
        if !live.contains(b) {
            continue;
        }
        let Terminator::Jump(t) = f.blocks[b].term else {
            continue;
        };
        if t == b || protected.contains(t) {
            continue;
        }
        let tpreds: Vec<BlockId> = preds
            .of(t)
            .iter()
            .copied()
            .filter(|p| live.contains(*p))
            .collect();
        if tpreds != [b] {
            continue;
        }
        if has_phi[t.index()] {
            continue;
        }
        // Splice t into b.
        let t_insts = std::mem::take(&mut f.blocks[t].insts);
        let t_term = std::mem::replace(&mut f.blocks[t].term, Terminator::Unreachable);
        f.blocks[b].insts.extend(t_insts);
        f.blocks[b].term = t_term;
        // Retarget φ operands naming t as predecessor.
        for ob in f.blocks.ids().collect::<Vec<_>>() {
            let insts = f.blocks[ob].insts.clone();
            for i in insts {
                if let InstKind::Phi(ins) = &mut f.insts[i].kind {
                    for (p, _) in ins.iter_mut() {
                        if *p == t {
                            *p = b;
                        }
                    }
                }
            }
        }
        // Region block sets: replace t by b where present.
        for r in f.regions.iter_mut() {
            if r.blocks.remove(t) {
                r.blocks.insert(b);
            }
        }
        stats.cfg_simplified += 1;
    }
    dyncomp_ir::cfg::prune_unreachable(f);
    stats
}

#[cfg(test)]
mod tests;
