//! End-to-end tests of the `dyncc` command-line tool.

use std::process::Command;

fn dyncc(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_dyncc"))
        .args(args)
        .output()
        .expect("dyncc runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

fn write_temp(name: &str, src: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("dyncc-cli-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let p = dir.join(name);
    std::fs::write(&p, src).unwrap();
    p
}

const POWER: &str = r#"
    int power(int k, int x) {
        dynamicRegion (k) {
            int r = 1;
            int i;
            unrolled for (i = 0; i < k; i++) { r = r * x; }
            return r;
        }
    }
"#;

#[test]
fn compiles_and_runs() {
    let p = write_temp("power.mc", POWER);
    let (out, _, ok) = dyncc(&[p.to_str().unwrap(), "--run", "power", "5", "3"]);
    assert!(ok, "{out}");
    assert!(out.contains("1 dynamic region(s)"), "{out}");
    assert!(out.contains("power(5, 3) = 243"), "{out}");
}

#[test]
fn template_dump_shows_directives() {
    let p = write_temp("power2.mc", POWER);
    let (out, _, ok) = dyncc(&[p.to_str().unwrap(), "--templates", "--regions"]);
    assert!(ok, "{out}");
    assert!(out.contains("ENTER_LOOP"), "{out}");
    assert!(out.contains("RESTART_LOOP"), "{out}");
    assert!(out.contains("CONST_BRANCH"), "{out}");
    assert!(out.contains("static table slot"), "{out}");
}

#[test]
fn report_shows_stitcher_work() {
    let p = write_temp("power3.mc", POWER);
    let (out, _, ok) = dyncc(&[p.to_str().unwrap(), "--run", "power", "4", "2", "--report"]);
    assert!(ok, "{out}");
    assert!(out.contains("power(4, 2) = 16"), "{out}");
    assert!(out.contains("1 stitch(es)"), "{out}");
    assert!(out.contains("4 loop iteration(s) unrolled"), "{out}");
}

#[test]
fn static_flag_compiles_baseline() {
    let p = write_temp("power4.mc", POWER);
    let (out, _, ok) = dyncc(&[p.to_str().unwrap(), "--static", "--run", "power", "3", "5"]);
    assert!(ok, "{out}");
    assert!(out.contains("0 dynamic region(s)"), "{out}");
    assert!(out.contains("power(3, 5) = 125"), "{out}");
}

#[test]
fn ir_dump_prints_functions() {
    let p = write_temp("power5.mc", POWER);
    let (out, _, ok) = dyncc(&[p.to_str().unwrap(), "--ir"]);
    assert!(ok);
    assert!(out.contains("func power"), "{out}");
    assert!(out.contains("enter_region"), "{out}");
}

#[test]
fn disasm_prints_code() {
    let p = write_temp("power6.mc", POWER);
    let (out, _, ok) = dyncc(&[p.to_str().unwrap(), "--disasm"]);
    assert!(ok);
    assert!(out.contains("EnterRegion"), "{out}");
    assert!(out.contains("EndSetup"), "{out}");
}

#[test]
fn errors_are_reported_with_nonzero_exit() {
    let p = write_temp("bad.mc", "int f( {");
    let (_, err, ok) = dyncc(&[p.to_str().unwrap()]);
    assert!(!ok);
    assert!(err.contains("parse error"), "{err}");

    let p2 = write_temp("good.mc", "int f(int x) { return x; }");
    let (_, err2, ok2) = dyncc(&[p2.to_str().unwrap(), "--run", "missing"]);
    assert!(!ok2);
    assert!(err2.contains("no function named"), "{err2}");
}

#[test]
fn stitched_dump_disassembles_final_code() {
    let p = write_temp("power7.mc", POWER);
    let (out, _, ok) = dyncc(&[
        p.to_str().unwrap(),
        "--run",
        "power",
        "3",
        "4",
        "--stitched",
    ]);
    assert!(ok, "{out}");
    assert!(out.contains("power(3, 4) = 64"), "{out}");
    assert!(out.contains("stitched code for region 0"), "{out}");
    // Fully unrolled: the stitched code has no backward loop branch and no
    // directives, just straight-line multiplies (or their strength-reduced
    // forms) and a return.
    assert!(
        !out.contains("ENTER_LOOP"),
        "directives never reach stitched code:\n{out}"
    );
}

#[test]
fn stitched_dump_shows_keyed_instances() {
    let src = r#"
        int scale(int k, int x) {
            dynamicRegion key(k) (k) { return k * x; }
        }
    "#;
    let p = write_temp("keyed.mc", src);
    // Two calls with distinct keys through one process would need a driver;
    // a single call shows the key annotation in the dump.
    let (out, _, ok) = dyncc(&[
        p.to_str().unwrap(),
        "--run",
        "scale",
        "5",
        "8",
        "--stitched",
    ]);
    assert!(ok, "{out}");
    assert!(out.contains("scale(5, 8) = 40"), "{out}");
    assert!(out.contains("key (5)"), "{out}");
}

#[test]
fn advise_ranks_annotation_candidates() {
    let src = r#"
        int power(int k, int x) {
            int r = 1;
            int i;
            for (i = 0; i < k; i++) { r = r * x; }
            return r;
        }
    "#;
    let p = write_temp("advise.mc", src);
    let (out, _, ok) = dyncc(&[p.to_str().unwrap(), "--advise"]);
    assert!(ok, "{out}");
    assert!(out.contains("function power:"), "{out}");
    assert!(out.contains("1/1 loop(s) unroll"), "{out}");
    assert!(out.contains("recommendation: annotate arg 0"), "{out}");
}

#[test]
fn native_flag_runs_and_summarizes() {
    let p = write_temp("power_native.mc", POWER);
    let (out, _, ok) = dyncc(&[p.to_str().unwrap(), "--run", "power", "5", "3", "--native"]);
    assert!(ok, "{out}");
    // The result is bit-identical to the VM backend.
    assert!(out.contains("power(5, 3) = 243"), "{out}");
    assert!(out.contains("native backend:"), "{out}");
    if cfg!(all(target_arch = "x86_64", target_os = "linux")) {
        assert!(out.contains("instance(s) installed"), "{out}");
    } else {
        assert!(out.contains("unavailable on this host"), "{out}");
    }
}
