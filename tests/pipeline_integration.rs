//! Cross-crate integration: multi-function / multi-region programs, keyed
//! code caches under churn, error reporting, and engine behaviors that the
//! per-crate unit tests don't reach.

use dyncomp::{Compiler, Engine, Error};

#[test]
fn regions_in_several_functions() {
    let src = r#"
        int scale(int s, int x) {
            dynamicRegion (s) { return x * s; }
        }
        int shift(int k, int x) {
            dynamicRegion (k) { return x << k; }
        }
        int both(int s, int k, int x) {
            return scale(s, x) + shift(k, x);
        }
    "#;
    let p = Compiler::new().compile(src).unwrap();
    assert_eq!(p.region_count(), 2);
    let mut e = Engine::new(&p);
    assert_eq!(e.call("both", &[3, 2, 10]).unwrap(), 30 + 40);
    assert_eq!(e.call("both", &[3, 2, 5]).unwrap(), 15 + 20);
    assert_eq!(e.region_report(0).stitches, 1);
    assert_eq!(e.region_report(1).stitches, 1);
}

#[test]
fn keyed_cache_under_key_churn() {
    let src = "int f(int k, int x) { dynamicRegion key(k) (k) { return x * k + (k << 2); } }";
    let p = Compiler::new().compile(src).unwrap();
    let mut e = Engine::new(&p);
    // Cycle through 6 keys, three passes each; 6 stitches total.
    for pass in 0..3u64 {
        for k in 1..=6u64 {
            let x = 10 + pass;
            assert_eq!(
                e.call("f", &[k, x]).unwrap(),
                x * k + (k << 2),
                "k={k} pass={pass}"
            );
        }
    }
    let r = e.region_report(0);
    assert_eq!(r.stitches, 6);
    assert_eq!(r.invocations, 18);
}

#[test]
fn region_inside_called_function_reused_across_callers() {
    let src = r#"
        int inner(int k, int x) {
            dynamicRegion (k) { return k * x + 1; }
        }
        int caller_a(int k) { return inner(k, 10); }
        int caller_b(int k) { return inner(k, 20); }
    "#;
    let p = Compiler::new().compile(src).unwrap();
    let mut e = Engine::new(&p);
    assert_eq!(e.call("caller_a", &[3]).unwrap(), 31);
    assert_eq!(e.call("caller_b", &[3]).unwrap(), 61);
    assert_eq!(
        e.region_report(0).stitches,
        1,
        "one stitch shared by both callers"
    );
}

#[test]
fn dynamic_loop_inside_region_stays_a_loop() {
    // A loop whose bound is dynamic remains in the template; the region
    // still specializes the constant multiplier.
    let src = r#"
        int f(int k, int n) {
            dynamicRegion (k) {
                int s = 0;
                int i;
                for (i = 0; i < n; i++) s += i * k;
                return s;
            }
        }
    "#;
    let p = Compiler::new().compile(src).unwrap();
    let mut e = Engine::new(&p);
    for n in [0u64, 1, 5, 17] {
        let want: u64 = (0..n).map(|i| i * 4).sum();
        assert_eq!(e.call("f", &[4, n]).unwrap(), want, "n={n}");
    }
    // One stitch despite varying n (n is not a region constant).
    assert_eq!(e.region_report(0).stitches, 1);
}

#[test]
fn error_messages_are_actionable() {
    // Parse error.
    let e = Compiler::new().compile("int f( { }").unwrap_err();
    assert!(matches!(e, Error::Frontend(_)));
    assert!(e.to_string().contains("parse error"), "{e}");

    // Illegal unroll.
    let e = Compiler::new()
        .compile(
            "int f(int k, int n) { dynamicRegion (k) { int i; int s = 0;
              unrolled for (i = 0; i < n; i++) s += k; return s; } }",
        )
        .unwrap_err();
    assert!(matches!(e, Error::Specialize(_)));
    assert!(e.to_string().contains("run-time constant"), "{e}");

    // Unknown function at run time.
    let p = Compiler::new()
        .compile("int f(int x) { return x; }")
        .unwrap();
    let mut engine = Engine::new(&p);
    let e = engine.call("nope", &[]).unwrap_err();
    assert!(matches!(e, Error::NoSuchFunction(_)));
}

#[test]
fn vm_faults_surface_as_errors() {
    // Null dereference inside a region.
    let src = "int f(int k, int *p) { dynamicRegion (k) { return p dynamic[ 0 ] + k; } }";
    let p = Compiler::new().compile(src).unwrap();
    let mut e = Engine::new(&p);
    let err = e.call("f", &[1, 0]).unwrap_err();
    assert!(matches!(err, Error::Vm(_)), "{err}");

    // Division by zero in plain code.
    let p2 = Compiler::new()
        .compile("int g(int a, int b) { return a / b; }")
        .unwrap();
    let mut e2 = Engine::new(&p2);
    assert!(matches!(e2.call("g", &[1, 0]).unwrap_err(), Error::Vm(_)));
}

#[test]
fn program_introspection() {
    let src = "int f(int k, int x) { dynamicRegion key(k) (k) { return k + x; } }";
    let p = Compiler::new().compile(src).unwrap();
    assert!(p.entry_of("f").is_some());
    assert!(p.entry_of("missing").is_none());
    assert_eq!(p.region_count(), 1);
    let rc = &p.compiled.regions[0];
    assert_eq!(rc.key_locs.len(), 1);
    assert!(rc.table_static_len >= 1);
    assert!(!rc.template.code.is_empty() || !rc.template.blocks.is_empty());
    // Spec stats recorded per region.
    assert_eq!(p.spec_stats.len(), 1);
}

#[test]
fn engine_memory_is_usable_before_and_between_calls() {
    let src = r#"
        int sum3(int k, int *p) {
            dynamicRegion (k) {
                return (p dynamic[ 0 ] + p dynamic[ 1 ] + p dynamic[ 2 ]) * k;
            }
        }
    "#;
    let p = Compiler::new().compile(src).unwrap();
    let mut e = Engine::new(&p);
    let arr = e.heap().array_i64(&[1, 2, 3]).unwrap();
    assert_eq!(e.call("sum3", &[10, arr]).unwrap(), 60);
    // Mutate between calls: dynamic loads see the new values.
    e.heap().put_i64(arr, 100).unwrap();
    assert_eq!(e.call("sum3", &[10, arr]).unwrap(), 1050);
}

#[test]
fn deeply_nested_control_flow_in_region() {
    let src = r#"
        int f(int k, int x) {
            dynamicRegion (k) {
                int r = 0;
                if (k > 10) {
                    if (k > 20) {
                        switch (k & 3) {
                            case 0: r = x + 1; break;
                            case 1: r = x + 2; break;
                            default: r = x + 3;
                        }
                    } else {
                        r = x + 4;
                    }
                } else {
                    int i;
                    unrolled for (i = 0; i < k; i++) r += x;
                }
                return r;
            }
        }
    "#;
    let ps = Compiler::static_baseline().compile(src).unwrap();
    let pd = Compiler::new().compile(src).unwrap();
    for k in [0u64, 3, 11, 21, 22, 23, 24] {
        let mut es = Engine::new(&ps);
        let mut ed = Engine::new(&pd);
        for x in [0u64, 9] {
            assert_eq!(
                es.call("f", &[k, x]).unwrap(),
                ed.call("f", &[k, x]).unwrap(),
                "k={k} x={x}"
            );
        }
    }
}

#[test]
fn hundred_iteration_unroll() {
    // Stress complete unrolling: 100 stitched copies.
    let src = r#"
        int f(int k, int x) {
            dynamicRegion (k) {
                int s = 0;
                int i;
                unrolled for (i = 0; i < k; i++) { s += x ^ i; }
                return s;
            }
        }
    "#;
    let p = Compiler::new().compile(src).unwrap();
    let mut e = Engine::new(&p);
    let want: u64 = (0..100u64).map(|i| 7 ^ i).sum();
    assert_eq!(e.call("f", &[100, 7]).unwrap(), want);
    let r = e.region_report(0);
    assert_eq!(r.stitch_stats.loop_iterations, 100);
    assert!(r.instructions_stitched > 300, "100 unrolled bodies");
    // Re-run uses the cached 100-copy code.
    assert_eq!(
        e.call("f", &[100, 9]).unwrap(),
        (0..100u64).map(|i| 9 ^ i).sum()
    );
}

#[test]
fn nested_unrolled_loops_stitch_fully() {
    // A constant "multiplication table" walked by two nested unrolled
    // loops: both trip counts and every table entry fold into the
    // stitched code; only `x` stays live.
    let src = r#"
        int weigh(int *w, int rows, int cols, int x) {
            dynamicRegion (w, rows, cols) {
                int acc = 0;
                int i;
                int j;
                unrolled for (i = 0; i < rows; i++) {
                    unrolled for (j = 0; j < cols; j++) {
                        acc += w[i * cols + j] * x;
                    }
                }
                return acc;
            }
        }
    "#;
    let p = Compiler::new().compile(src).unwrap();
    let mut e = Engine::new(&p);
    let w: Vec<i64> = (1..=12).collect(); // 3x4
    let sum: i64 = w.iter().sum();
    let addr = e.heap().array_i64(&w).unwrap();
    assert_eq!(e.call("weigh", &[addr, 3, 4, 2]).unwrap() as i64, 2 * sum);
    assert_eq!(e.call("weigh", &[addr, 3, 4, 5]).unwrap() as i64, 5 * sum);
    let r = e.region_report(0);
    assert_eq!(
        r.stitch_stats.loop_iterations,
        3 + 12,
        "3 outer + 3*4 inner iterations unrolled"
    );
}

#[test]
fn unrolled_loop_with_continue_and_break() {
    // `continue` on a per-iteration constant predicate; `break` on a
    // dynamic one. The stitcher resolves the former, the latter remains a
    // real branch in every unrolled copy.
    let src = r#"
        int pick(int *tab, int n, int limit) {
            dynamicRegion (tab, n) {
                int sum = 0;
                int i;
                unrolled for (i = 0; i < n; i++) {
                    if (tab[i] == 0) continue;      /* constant per copy */
                    if (sum > limit) break;         /* dynamic */
                    sum += tab[i];
                }
                return sum;
            }
        }
    "#;
    let p = Compiler::new().compile(src).unwrap();
    let mut e = Engine::new(&p);
    let tab = e.heap().array_i64(&[5, 0, 7, 0, 11, 13]).unwrap();
    // Host reference.
    let host = |limit: i64| {
        let t = [5i64, 0, 7, 0, 11, 13];
        let mut sum = 0;
        for &v in &t {
            if v == 0 {
                continue;
            }
            if sum > limit {
                break;
            }
            sum += v;
        }
        sum
    };
    for limit in [0i64, 4, 11, 22, 100] {
        assert_eq!(
            e.call("pick", &[tab, 6, limit as u64]).unwrap() as i64,
            host(limit),
            "limit={limit}"
        );
    }
}

#[test]
fn switch_on_per_iteration_constant_inside_unrolled_loop() {
    // The dispatcher pattern in miniature: a constant opcode stream where
    // each unrolled copy keeps exactly one switch arm.
    let src = r#"
        int run(int *ops, int n, int x) {
            dynamicRegion (ops, n) {
                int acc = x;
                int i;
                unrolled for (i = 0; i < n; i++) {
                    switch (ops[i]) {
                        case 0: acc += 3; break;
                        case 1: acc *= 2; break;
                        case 2: acc -= 1; break;
                        default: acc = acc ^ 255; break;
                    }
                }
                return acc;
            }
        }
    "#;
    let p = Compiler::new().compile(src).unwrap();
    let mut e = Engine::new(&p);
    let ops = e.heap().array_i64(&[0, 1, 2, 9, 1]).unwrap();
    let host = |x: i64| {
        let mut acc = x;
        for op in [0i64, 1, 2, 9, 1] {
            match op {
                0 => acc += 3,
                1 => acc *= 2,
                2 => acc -= 1,
                _ => acc ^= 255,
            }
        }
        acc
    };
    for x in [0i64, 1, 7, -4, 1000] {
        assert_eq!(
            e.call("run", &[ops, 5, x as u64]).unwrap() as i64,
            host(x),
            "x={x}"
        );
    }
    // All five switches resolved at stitch time.
    let r = e.region_report(0);
    assert!(
        r.stitch_stats.const_branches_resolved >= 5,
        "{:?}",
        r.stitch_stats
    );
}

#[test]
fn float_region_end_to_end() {
    let src = r#"
        double axpy(double *a, int n, double *x, double *y) {
            dynamicRegion (a, n) {
                double acc = 0.0;
                int i;
                unrolled for (i = 0; i < n; i++) {
                    acc += a[i] * x[i] + y[i];
                }
                return acc;
            }
        }
    "#;
    let p = Compiler::new().compile(src).unwrap();
    let mut e = Engine::new(&p);
    let a = e.heap().array_f64(&[0.5, -1.25, 2.0]).unwrap();
    let x = e.heap().array_f64(&[4.0, 2.0, 1.5]).unwrap();
    let y = e.heap().array_f64(&[1.0, 1.0, 1.0]).unwrap();
    let expect = 0.5 * 4.0 + 1.0 + (-1.25) * 2.0 + 1.0 + 2.0 * 1.5 + 1.0;
    assert_eq!(e.call_f("axpy", &[a, 3, x, y]).unwrap(), expect);
    // Warm call, same instance.
    assert_eq!(e.call_f("axpy", &[a, 3, x, y]).unwrap(), expect);
    assert_eq!(e.region_report(0).stitches, 1);
}

#[test]
fn goto_based_state_machine_in_region() {
    // Unstructured control flow through a region — the reason the paper
    // works on CFGs. A constant mode selects among goto-connected states.
    let src = r#"
        int machine(int mode, int x) {
            dynamicRegion (mode) {
                int acc = 0;
                if (mode == 0) goto fast;
                if (mode == 1) goto slow;
                goto out;
              fast:
                acc = x * 2;
                goto out;
              slow:
                acc = x + 1;
                if (x > 10) goto fast;
              out:
                return acc;
            }
        }
    "#;
    let p = Compiler::new().compile(src).unwrap();
    for mode in 0..3u64 {
        let mut e = Engine::new(&p);
        for x in [0u64, 5, 20] {
            let expect = match mode {
                0 => x * 2,
                1 => {
                    if x > 10 {
                        x * 2
                    } else {
                        x + 1
                    }
                }
                _ => 0,
            };
            assert_eq!(
                e.call("machine", &[mode, x]).unwrap(),
                expect,
                "mode={mode} x={x}"
            );
        }
        // The mode tests are constant: the stitched code starts past them.
        let r = e.region_report(0);
        assert!(
            r.stitch_stats.const_branches_resolved >= 1,
            "mode {mode}: {:?}",
            r.stitch_stats
        );
    }
}

#[test]
fn dynamic_switch_in_region_compiles_to_machine_code() {
    // A switch whose selector is NOT a run-time constant has no template
    // directive form; the compiler lowers it to a compare chain inside the
    // template (constant switches keep their CONST_SWITCH directive).
    let src = r#"
        int tariff(int rate, int class) {
            dynamicRegion (rate) {
                int fee;
                switch (class) {
                    case 0: fee = rate; break;
                    case 1: fee = rate * 2; break;
                    case 2: fee = rate * 5; break;
                    default: fee = rate * 10; break;
                }
                return fee + class;
            }
        }
    "#;
    let p = Compiler::new().compile(src).unwrap();
    let mut e = Engine::new(&p);
    for class in 0..5u64 {
        let expect = match class {
            0 => 7,
            1 => 14,
            2 => 35,
            _ => 70,
        } + class;
        assert_eq!(
            e.call("tariff", &[7, class]).unwrap(),
            expect,
            "class={class}"
        );
    }
    assert_eq!(e.region_report(0).stitches, 1);
}
