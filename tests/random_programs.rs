//! Property-based differential testing across the whole system: random
//! MiniC programs are executed three ways —
//!
//! 1. the reference IR interpreter (plain lowering),
//! 2. the static compiler + SimAlpha VM,
//! 3. the dynamic compiler (body wrapped in a `dynamicRegion`) + stitcher,
//!
//! and all three must agree on every input. This exercises the front end,
//! SSA construction/destruction, the optimizer, the analyses, the
//! specializer, register allocation, codegen, the VM and the stitcher in
//! one property.

use dyncomp::{Compiler, Engine};
use dyncomp_frontend::{compile, LowerOptions};
use dyncomp_ir::eval::{EvalOutcome, Evaluator};
use proptest::prelude::*;

/// A tiny expression AST we can render as MiniC.
#[derive(Clone, Debug)]
enum Expr {
    /// Parameter `k` (the region's run-time constant).
    K,
    /// Parameter `x` (always dynamic).
    X,
    /// A local variable by index.
    Var(u8),
    /// Integer literal.
    Lit(i8),
    /// Binary operation.
    Bin(&'static str, Box<Expr>, Box<Expr>),
}

fn render(e: &Expr) -> String {
    match e {
        Expr::K => "k".into(),
        Expr::X => "x".into(),
        Expr::Var(v) => format!("v{}", v % 3),
        Expr::Lit(l) => {
            if *l < 0 {
                format!("(0 - {})", -i32::from(*l))
            } else {
                format!("{l}")
            }
        }
        Expr::Bin(op, a, b) => format!("({} {} {})", render(a), op, render(b)),
    }
}

fn expr_strategy() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        Just(Expr::K),
        Just(Expr::X),
        any::<u8>().prop_map(Expr::Var),
        any::<i8>().prop_map(Expr::Lit),
    ];
    leaf.prop_recursive(3, 24, 2, |inner| {
        (
            prop_oneof![
                Just("+"),
                Just("-"),
                Just("*"),
                Just("&"),
                Just("|"),
                Just("^"),
                Just("<"),
                Just(">"),
                Just("=="),
                Just("!="),
            ],
            inner.clone(),
            inner,
        )
            .prop_map(|(op, a, b)| Expr::Bin(op, Box::new(a), Box::new(b)))
    })
}

#[derive(Clone, Debug)]
enum Stmt {
    Assign(u8, Expr),
    If(Expr, (u8, Expr), Option<(u8, Expr)>),
    /// `if` with full statement blocks in both arms (nesting!).
    IfBlock(Expr, Vec<Stmt>, Vec<Stmt>),
    /// Bounded loop: `for (i = 0; i < n; i++) v += expr;` with n in 0..6.
    Loop(u8, u8, Expr),
    /// `unrolled for` with a constant trip count (renders as a plain loop
    /// in the static variant, where the annotation would be illegal).
    Unrolled(u8, u8, Expr),
    /// `switch (sel) { case 0 / case 1 / default }`, each arm an assignment.
    Switch(Expr, (u8, Expr), (u8, Expr), (u8, Expr)),
}

fn stmt_strategy() -> impl Strategy<Value = Stmt> {
    let leaf = prop_oneof![
        (any::<u8>(), expr_strategy()).prop_map(|(v, e)| Stmt::Assign(v, e)),
        (
            expr_strategy(),
            any::<u8>(),
            expr_strategy(),
            proptest::option::of((any::<u8>(), expr_strategy()))
        )
            .prop_map(|(c, v, t, e)| Stmt::If(c, (v, t), e)),
        (any::<u8>(), 0u8..6, expr_strategy()).prop_map(|(v, n, e)| Stmt::Loop(v, n, e)),
        (any::<u8>(), 0u8..5, expr_strategy()).prop_map(|(v, n, e)| Stmt::Unrolled(v, n, e)),
        (
            expr_strategy(),
            (any::<u8>(), expr_strategy()),
            (any::<u8>(), expr_strategy()),
            (any::<u8>(), expr_strategy())
        )
            .prop_map(|(sel, a, b, d)| Stmt::Switch(sel, a, b, d)),
    ];
    // Allow `if` blocks whose arms are themselves statement lists, so
    // loops/switches/unrolled loops appear under dynamic and constant
    // branches alike.
    leaf.prop_recursive(2, 12, 3, |inner| {
        (
            expr_strategy(),
            proptest::collection::vec(inner.clone(), 0..3),
            proptest::collection::vec(inner, 0..3),
        )
            .prop_map(|(c, t, e)| Stmt::IfBlock(c, t, e))
    })
}

fn render_stmt(s: &Stmt, dynamic: bool, out: &mut String) {
    match s {
        Stmt::Assign(v, e) => out.push_str(&format!("v{} = {};\n", v % 3, render(e))),
        Stmt::IfBlock(c, t, e) => {
            out.push_str(&format!("if ({}) {{\n", render(c)));
            for st in t {
                render_stmt(st, dynamic, out);
            }
            out.push_str("} else {\n");
            for st in e {
                render_stmt(st, dynamic, out);
            }
            out.push_str("}\n");
        }
        Stmt::If(c, (v, t), e) => {
            out.push_str(&format!(
                "if ({}) {{ v{} = {}; }}",
                render(c),
                v % 3,
                render(t)
            ));
            if let Some((v2, e2)) = e {
                out.push_str(&format!(" else {{ v{} = {}; }}", v2 % 3, render(e2)));
            }
            out.push('\n');
        }
        Stmt::Loop(v, n, e) => {
            out.push_str(&format!(
                "for (li = 0; li < {n}; li++) {{ v{} = v{} + ({}); }}\n",
                v % 3,
                v % 3,
                render(e)
            ));
        }
        Stmt::Unrolled(v, n, e) => {
            // `unrolled` is only legal inside a dynamic region; the static
            // rendering of the same program uses an ordinary loop.
            let kw = if dynamic { "unrolled " } else { "" };
            out.push_str(&format!(
                "{kw}for (li = 0; li < {n}; li++) {{ v{} = v{} + ({}); }}\n",
                v % 3,
                v % 3,
                render(e)
            ));
        }
        Stmt::Switch(sel, (va, ea), (vb, eb), (vd, ed)) => {
            out.push_str(&format!(
                "switch ({}) {{ case 0: v{} = {}; break; case 1: v{} = {}; break; \
                 default: v{} = {}; break; }}\n",
                render(sel),
                va % 3,
                render(ea),
                vb % 3,
                render(eb),
                vd % 3,
                render(ed)
            ));
        }
    }
}

/// Render a full program; `dynamic` wraps the body in a region keyed on k.
fn render_program(stmts: &[Stmt], dynamic: bool) -> String {
    let mut body = String::new();
    for s in stmts {
        render_stmt(s, dynamic, &mut body);
    }
    let core = format!(
        "int v0 = k; int v1 = x; int v2 = 7; int li;\n{body}\nreturn v0 * 3 + v1 * 5 + v2;"
    );
    if dynamic {
        format!("int f(int k, int x) {{ dynamicRegion (k) {{ {core} }} }}")
    } else {
        format!("int f(int k, int x) {{ {core} }}")
    }
}

fn run_reference(src: &str, k: u64, x: u64) -> i64 {
    let m = compile(src, &LowerOptions::default())
        .expect("compiles")
        .module;
    let fid = m.func_by_name("f").unwrap();
    let mut ev = Evaluator::new(&m);
    match ev.call(fid, &[k, x]).expect("reference runs") {
        EvalOutcome::Return(Some(v)) => v as i64,
        other => panic!("unexpected {other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, .. ProptestConfig::default() })]

    #[test]
    fn three_way_agreement(stmts in proptest::collection::vec(stmt_strategy(), 1..6),
                           k in 0u64..40, xs in proptest::collection::vec(0u64..64, 1..4)) {
        let plain_src = render_program(&stmts, false);
        let dyn_src = render_program(&stmts, true);

        // Static compile once; dynamic compile once.
        let static_prog = Compiler::static_baseline().compile(&plain_src).expect("static compiles");
        let dyn_prog = Compiler::new().compile(&dyn_src).expect("dynamic compiles");
        let mut se = Engine::new(&static_prog);
        let mut de = Engine::new(&dyn_prog);

        for &x in &xs {
            let want = run_reference(&plain_src, k, x);
            let got_static = se.call("f", &[k, x]).expect("static vm runs") as i64;
            prop_assert_eq!(got_static, want, "static VM vs reference (k={}, x={})", k, x);
            let got_dyn = de.call("f", &[k, x]).expect("dynamic vm runs") as i64;
            prop_assert_eq!(got_dyn, want, "dynamic VM vs reference (k={}, x={})", k, x);
        }
    }

    #[test]
    fn optimizer_preserves_random_programs(stmts in proptest::collection::vec(stmt_strategy(), 1..6),
                                           k in 0u64..40, x in 0u64..64) {
        let src = render_program(&stmts, false);
        // Unoptimized vs optimized static compilation must agree.
        let unopt = Compiler::with_options(dyncomp::CompileOptions {
            dynamic: false,
            optimize: false,
            ..Default::default()
        })
        .compile(&src)
        .expect("compiles");
        let opt = Compiler::static_baseline().compile(&src).expect("compiles");
        let mut eu = Engine::new(&unopt);
        let a = eu.call("f", &[k, x]).expect("runs") as i64;
        let mut eo = Engine::new(&opt);
        let b = eo.call("f", &[k, x]).expect("runs") as i64;
        prop_assert_eq!(a, b);
    }
}
