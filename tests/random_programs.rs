//! Randomized differential testing across the whole system: random
//! MiniC programs are executed three ways —
//!
//! 1. the reference IR interpreter (plain lowering),
//! 2. the static compiler + SimAlpha VM,
//! 3. the dynamic compiler (body wrapped in a `dynamicRegion`) + stitcher,
//!
//! and all three must agree on every input. This exercises the front end,
//! SSA construction/destruction, the optimizer, the analyses, the
//! specializer, register allocation, codegen, the VM and the stitcher in
//! one property. Programs are generated from a seeded [`SplitMix64`], so
//! every run tests the identical corpus.

use dyncomp::{Compiler, Engine};
use dyncomp_frontend::{compile, LowerOptions};
use dyncomp_ir::eval::{EvalOutcome, Evaluator};
use dyncomp_ir::prng::SplitMix64;

/// A tiny expression AST we can render as MiniC.
#[derive(Clone, Debug)]
enum Expr {
    /// Parameter `k` (the region's run-time constant).
    K,
    /// Parameter `x` (always dynamic).
    X,
    /// A local variable by index.
    Var(u8),
    /// Integer literal.
    Lit(i8),
    /// Binary operation.
    Bin(&'static str, Box<Expr>, Box<Expr>),
}

const BIN_OPS: [&str; 10] = ["+", "-", "*", "&", "|", "^", "<", ">", "==", "!="];

fn random_expr(rng: &mut SplitMix64, depth: u32) -> Expr {
    let leaf = depth == 0 || rng.chance(2, 5);
    if leaf {
        match rng.below(4) {
            0 => Expr::K,
            1 => Expr::X,
            2 => Expr::Var(rng.next_u64() as u8),
            _ => Expr::Lit(rng.next_u64() as i8),
        }
    } else {
        let op = BIN_OPS[rng.below(BIN_OPS.len() as u64) as usize];
        let a = random_expr(rng, depth - 1);
        let b = random_expr(rng, depth - 1);
        Expr::Bin(op, Box::new(a), Box::new(b))
    }
}

fn render(e: &Expr) -> String {
    match e {
        Expr::K => "k".into(),
        Expr::X => "x".into(),
        Expr::Var(v) => format!("v{}", v % 3),
        Expr::Lit(l) => {
            if *l < 0 {
                format!("(0 - {})", -i32::from(*l))
            } else {
                format!("{l}")
            }
        }
        Expr::Bin(op, a, b) => format!("({} {} {})", render(a), op, render(b)),
    }
}

#[derive(Clone, Debug)]
enum Stmt {
    Assign(u8, Expr),
    If(Expr, (u8, Expr), Option<(u8, Expr)>),
    /// `if` with full statement blocks in both arms (nesting!).
    IfBlock(Expr, Vec<Stmt>, Vec<Stmt>),
    /// Bounded loop: `for (i = 0; i < n; i++) v += expr;` with n in 0..6.
    Loop(u8, u8, Expr),
    /// `unrolled for` with a constant trip count (renders as a plain loop
    /// in the static variant, where the annotation would be illegal).
    Unrolled(u8, u8, Expr),
    /// `switch (sel) { case 0 / case 1 / default }`, each arm an assignment.
    Switch(Expr, (u8, Expr), (u8, Expr), (u8, Expr)),
}

fn random_stmt(rng: &mut SplitMix64, nest: u32) -> Stmt {
    // `IfBlock` arms nest full statement lists, so loops/switches/unrolled
    // loops appear under dynamic and constant branches alike.
    if nest > 0 && rng.chance(1, 4) {
        let c = random_expr(rng, 2);
        let t = (0..rng.below(3))
            .map(|_| random_stmt(rng, nest - 1))
            .collect();
        let e = (0..rng.below(3))
            .map(|_| random_stmt(rng, nest - 1))
            .collect();
        return Stmt::IfBlock(c, t, e);
    }
    match rng.below(5) {
        0 => Stmt::Assign(rng.next_u64() as u8, random_expr(rng, 3)),
        1 => {
            let c = random_expr(rng, 2);
            let v = rng.next_u64() as u8;
            let t = random_expr(rng, 2);
            let e = if rng.chance(1, 2) {
                Some((rng.next_u64() as u8, random_expr(rng, 2)))
            } else {
                None
            };
            Stmt::If(c, (v, t), e)
        }
        2 => Stmt::Loop(
            rng.next_u64() as u8,
            rng.below(6) as u8,
            random_expr(rng, 2),
        ),
        3 => Stmt::Unrolled(
            rng.next_u64() as u8,
            rng.below(5) as u8,
            random_expr(rng, 2),
        ),
        _ => Stmt::Switch(
            random_expr(rng, 2),
            (rng.next_u64() as u8, random_expr(rng, 2)),
            (rng.next_u64() as u8, random_expr(rng, 2)),
            (rng.next_u64() as u8, random_expr(rng, 2)),
        ),
    }
}

fn random_stmts(rng: &mut SplitMix64) -> Vec<Stmt> {
    (0..rng.range_u64(1, 6))
        .map(|_| random_stmt(rng, 2))
        .collect()
}

fn render_stmt(s: &Stmt, dynamic: bool, out: &mut String) {
    match s {
        Stmt::Assign(v, e) => out.push_str(&format!("v{} = {};\n", v % 3, render(e))),
        Stmt::IfBlock(c, t, e) => {
            out.push_str(&format!("if ({}) {{\n", render(c)));
            for st in t {
                render_stmt(st, dynamic, out);
            }
            out.push_str("} else {\n");
            for st in e {
                render_stmt(st, dynamic, out);
            }
            out.push_str("}\n");
        }
        Stmt::If(c, (v, t), e) => {
            out.push_str(&format!(
                "if ({}) {{ v{} = {}; }}",
                render(c),
                v % 3,
                render(t)
            ));
            if let Some((v2, e2)) = e {
                out.push_str(&format!(" else {{ v{} = {}; }}", v2 % 3, render(e2)));
            }
            out.push('\n');
        }
        Stmt::Loop(v, n, e) => {
            out.push_str(&format!(
                "for (li = 0; li < {n}; li++) {{ v{} = v{} + ({}); }}\n",
                v % 3,
                v % 3,
                render(e)
            ));
        }
        Stmt::Unrolled(v, n, e) => {
            // `unrolled` is only legal inside a dynamic region; the static
            // rendering of the same program uses an ordinary loop.
            let kw = if dynamic { "unrolled " } else { "" };
            out.push_str(&format!(
                "{kw}for (li = 0; li < {n}; li++) {{ v{} = v{} + ({}); }}\n",
                v % 3,
                v % 3,
                render(e)
            ));
        }
        Stmt::Switch(sel, (va, ea), (vb, eb), (vd, ed)) => {
            out.push_str(&format!(
                "switch ({}) {{ case 0: v{} = {}; break; case 1: v{} = {}; break; \
                 default: v{} = {}; break; }}\n",
                render(sel),
                va % 3,
                render(ea),
                vb % 3,
                render(eb),
                vd % 3,
                render(ed)
            ));
        }
    }
}

/// Render a full program; `dynamic` wraps the body in a region keyed on k.
fn render_program(stmts: &[Stmt], dynamic: bool) -> String {
    let mut body = String::new();
    for s in stmts {
        render_stmt(s, dynamic, &mut body);
    }
    let core = format!(
        "int v0 = k; int v1 = x; int v2 = 7; int li;\n{body}\nreturn v0 * 3 + v1 * 5 + v2;"
    );
    if dynamic {
        format!("int f(int k, int x) {{ dynamicRegion (k) {{ {core} }} }}")
    } else {
        format!("int f(int k, int x) {{ {core} }}")
    }
}

fn run_reference(src: &str, k: u64, x: u64) -> i64 {
    let m = compile(src, &LowerOptions::default())
        .expect("compiles")
        .module;
    let fid = m.func_by_name("f").unwrap();
    let mut ev = Evaluator::new(&m);
    match ev.call(fid, &[k, x]).expect("reference runs") {
        EvalOutcome::Return(Some(v)) => v as i64,
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn three_way_agreement() {
    let mut rng = SplitMix64::new(0x3a3a_0001);
    for case in 0..48 {
        let stmts = random_stmts(&mut rng);
        let k = rng.below(40);
        let xs: Vec<u64> = (0..rng.range_u64(1, 4)).map(|_| rng.below(64)).collect();

        let plain_src = render_program(&stmts, false);
        let dyn_src = render_program(&stmts, true);

        // Static compile once; dynamic compile once.
        let static_prog = Compiler::static_baseline()
            .compile(&plain_src)
            .expect("static compiles");
        let dyn_prog = Compiler::new().compile(&dyn_src).expect("dynamic compiles");
        let mut se = Engine::new(&static_prog);
        let mut de = Engine::new(&dyn_prog);

        for &x in &xs {
            let want = run_reference(&plain_src, k, x);
            let got_static = se.call("f", &[k, x]).expect("static vm runs") as i64;
            assert_eq!(
                got_static, want,
                "case {case}: static VM vs reference (k={k}, x={x})\n{plain_src}"
            );
            let got_dyn = de.call("f", &[k, x]).expect("dynamic vm runs") as i64;
            assert_eq!(
                got_dyn, want,
                "case {case}: dynamic VM vs reference (k={k}, x={x})\n{dyn_src}"
            );
        }
    }
}

#[test]
fn optimizer_preserves_random_programs() {
    let mut rng = SplitMix64::new(0x3a3a_0002);
    for case in 0..48 {
        let stmts = random_stmts(&mut rng);
        let k = rng.below(40);
        let x = rng.below(64);
        let src = render_program(&stmts, false);
        // Unoptimized vs optimized static compilation must agree.
        let unopt = Compiler::with_options(dyncomp::CompileOptions {
            dynamic: false,
            optimize: false,
            ..Default::default()
        })
        .compile(&src)
        .expect("compiles");
        let opt = Compiler::static_baseline().compile(&src).expect("compiles");
        let mut eu = Engine::new(&unopt);
        let a = eu.call("f", &[k, x]).expect("runs") as i64;
        let mut eo = Engine::new(&opt);
        let b = eo.call("f", &[k, x]).expect("runs") as i64;
        assert_eq!(a, b, "case {case}: optimizer changed behavior\n{src}");
    }
}
