//! Cross-function dynamic regions: template calls and demand-driven
//! inlining, end to end through the VM.

use dyncomp::{Compiler, Engine};

const SRC: &str = r#"
    int helper(int a, int b) { return a * b + 3; }
    int poly(int c, int x) {
        dynamicRegion (c) {
            return helper(c, x) + c;
        }
    }
"#;

/// Without inlining, a call inside a dynamic region compiles as a
/// template call to the (region-free) callee.
#[test]
fn template_call_in_region() {
    let p = Compiler::new().compile(SRC).unwrap();
    assert!(p.inline_sites.is_empty());
    let mut e = Engine::new(&p);
    assert_eq!(e.call("poly", &[3, 10]).unwrap(), 36);
    assert_eq!(e.call("poly", &[3, 4]).unwrap(), 18);
}

/// With inlining enabled, the demand (a run-time-constant argument `c`)
/// pulls the callee body into the region; no call survives and the
/// answers are unchanged.
#[test]
fn demand_driven_inline_in_region() {
    let p = Compiler::with_inline_depth(2).compile(SRC).unwrap();
    assert_eq!(p.inline_sites.len(), 1, "one demanded site");
    let site = &p.inline_sites[0];
    assert_eq!(site.callee_name, "helper");
    assert_eq!(site.depth, 1);
    // The inlined artifact must agree with the non-inlined one.
    let mut e = Engine::new(&p);
    assert_eq!(e.call("poly", &[3, 10]).unwrap(), 36);
    assert_eq!(e.call("poly", &[3, 4]).unwrap(), 18);
    // And the call really is gone from the region's function.
    let fid = p.module.func_by_name("poly").unwrap();
    let f = &p.module.funcs[fid];
    for (_, blk) in f.iter_blocks() {
        for &i in &blk.insts {
            assert!(
                !matches!(f.kind(i), dyncomp_ir::InstKind::Call { .. }),
                "inlined function still contains a call"
            );
        }
    }
}

/// Nested helpers: round 1 exposes the inner call, round 2 inlines it.
#[test]
fn inline_depth_bounds_nesting() {
    let src = r#"
        int inner(int a) { return a + 1; }
        int outer(int a, int b) { return inner(a) * b; }
        int poly(int c, int x) {
            dynamicRegion (c) {
                return outer(c, x) + c;
            }
        }
    "#;
    // reference: ((c+1)*x) + c, c=3, x=10 -> 43
    let d1 = Compiler::with_inline_depth(1).compile(src).unwrap();
    assert_eq!(d1.inline_sites.len(), 1, "depth 1 stops at `outer`");
    let d2 = Compiler::with_inline_depth(2).compile(src).unwrap();
    assert_eq!(d2.inline_sites.len(), 2, "depth 2 reaches `inner`");
    assert_eq!(d2.inline_sites[1].callee_name, "inner");
    assert_eq!(d2.inline_sites[1].depth, 2);
    for p in [&d1, &d2] {
        let mut e = Engine::new(p);
        assert_eq!(e.call("poly", &[3, 10]).unwrap(), 43);
    }
}

/// A call with no run-time-constant argument creates no demand: it stays
/// a template call even with inlining enabled.
#[test]
fn no_demand_no_inline() {
    let src = r#"
        int helper(int a) { return a + 7; }
        int poly(int c, int x) {
            dynamicRegion (c) {
                return helper(x) * c;
            }
        }
    "#;
    let p = Compiler::with_inline_depth(3).compile(src).unwrap();
    assert!(p.inline_sites.is_empty(), "no constant argument, no demand");
    let mut e = Engine::new(&p);
    assert_eq!(e.call("poly", &[3, 10]).unwrap(), 51);
}

/// Calls outside any region are never touched by the pass.
#[test]
fn calls_outside_regions_untouched() {
    let src = r#"
        int helper(int a) { return a * 2; }
        int main(int c) {
            int y = helper(c);
            dynamicRegion (c) {
                return y + c;
            }
        }
    "#;
    let p = Compiler::with_inline_depth(3).compile(src).unwrap();
    assert!(p.inline_sites.is_empty());
    let mut e = Engine::new(&p);
    assert_eq!(e.call("main", &[5]).unwrap(), 15);
}
