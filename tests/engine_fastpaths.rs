//! Edge cases of the engine's fast paths: the VM's predecode cache across
//! `EnterRegion` patching, and the keyed-region cache's O(1) LRU eviction.

use dyncomp::{Compiler, Engine, EngineOptions};
use dyncomp_machine::isa::{decode, Op};

const UNKEYED_SRC: &str = r#"
    int f(int x) {
        dynamicRegion (x) {
            int acc = x * 3 + 1;
            return acc;
        }
    }
"#;

const KEYED_SRC: &str = r#"
    int f(int k, int x) {
        dynamicRegion key(k) (k) {
            int i; int acc = 0;
            unrolled for (i = 0; i < k; i++) { acc = acc + x; }
            return acc + k * 7;
        }
    }
"#;

/// The first entry of an unkeyed region executes (and predecodes) the
/// `EnterRegion` trap word, then the engine patches that word into a
/// direct branch. The second call must execute the *patched* word — a
/// stale predecode entry would re-trap forever (or crash). Also checks
/// the patch really landed via the VM's own fetch path.
#[test]
fn predecode_invalidated_when_enter_region_is_patched() {
    let p = Compiler::new().compile(UNKEYED_SRC).unwrap();
    let mut e = Engine::new(&p);

    let first = e.call("f", &[10]).unwrap();
    let enter_pc = p.compiled.regions[0].enter_pc;
    let inst = decode(e.vm.code[enter_pc as usize], None).expect("patched word decodes");
    assert_eq!(inst.op, Op::Br, "EnterRegion was patched to a branch");

    let t0 = e.cycles();
    let second = e.call("f", &[10]).unwrap();
    let warm = e.cycles() - t0;
    assert_eq!(first, second);

    // A third call through the same patched word costs exactly the same:
    // the predecoded branch is cached and correct.
    let t1 = e.cycles();
    let third = e.call("f", &[10]).unwrap();
    assert_eq!(third, second);
    assert_eq!(e.cycles() - t1, warm, "steady-state cost is stable");

    let report = e.region_report(0);
    assert_eq!(report.stitches, 1, "no re-stitch after patching");
}

/// Bounded keyed cache: filling past capacity evicts the least-recently
/// used key; re-entering the evicted key re-stitches to *bit-identical*
/// code and returns the same result, and cached entries keep a stable
/// per-call cycle cost.
#[test]
fn keyed_lru_eviction_then_restitch_is_identical_and_stable() {
    let p = Compiler::new().compile(KEYED_SRC).unwrap();
    let mut e = Engine::with_options(
        &p,
        EngineOptions {
            keyed_cache_capacity: Some(2),
            ..EngineOptions::default()
        },
    );

    let r1 = e.call("f", &[1, 100]).unwrap(); // stitch k=1
    let r2 = e.call("f", &[2, 100]).unwrap(); // stitch k=2
    assert_eq!(e.region_report(0).evictions, 0);
    let r3 = e.call("f", &[3, 100]).unwrap(); // stitch k=3, evicts k=1
    assert_eq!(e.region_report(0).evictions, 1);
    assert_eq!(e.region_report(0).stitches, 3);

    // k=1 was evicted: this entry re-stitches...
    let r1b = e.call("f", &[1, 100]).unwrap();
    assert_eq!(r1, r1b, "re-stitched instance computes the same result");
    assert_eq!(e.region_report(0).stitches, 4);
    assert_eq!(e.region_report(0).evictions, 2, "k=2 evicted in turn");

    // ...to code bit-identical to the first k=1 instance, except word 1:
    // the address operand of the prologue's `Ldiw LIN` points at a fresh
    // linearized-table allocation per stitch.
    let instances = e.stitched_instances(0);
    assert_eq!(instances.len(), 4, "all instances survive in code space");
    assert_eq!(instances[0].0, &[1u64][..]);
    assert_eq!(instances[3].0, &[1u64][..]);
    assert_eq!(instances[0].1[0], instances[3].1[0]);
    assert_eq!(
        instances[0].1[2..],
        instances[3].1[2..],
        "re-stitch after eviction reproduces the same code words"
    );

    // Cached re-entries of the same key cost identical cycles.
    let t0 = e.cycles();
    let a = e.call("f", &[1, 100]).unwrap();
    let c1 = e.cycles() - t0;
    let t1 = e.cycles();
    let b = e.call("f", &[1, 100]).unwrap();
    let c2 = e.cycles() - t1;
    assert_eq!(a, b);
    assert_eq!(a, r1);
    assert_eq!(c1, c2, "cached keyed entry has a stable cycle cost");

    assert_eq!(r2, 100 * 2 + 2 * 7);
    assert_eq!(r3, 100 * 3 + 3 * 7);
}

/// A cache *hit* must refresh recency: with capacity 2, hitting the older
/// key before inserting a third must evict the other key, not the hit one.
#[test]
fn lru_touch_on_hit_protects_recently_used_keys() {
    let p = Compiler::new().compile(KEYED_SRC).unwrap();
    let mut e = Engine::with_options(
        &p,
        EngineOptions {
            keyed_cache_capacity: Some(2),
            ..EngineOptions::default()
        },
    );

    e.call("f", &[1, 5]).unwrap(); // stitch k=1 (LRU order: 1)
    e.call("f", &[2, 5]).unwrap(); // stitch k=2 (order: 1, 2)
    e.call("f", &[1, 5]).unwrap(); // hit k=1 (order: 2, 1)
    assert_eq!(e.region_report(0).stitches, 2);

    e.call("f", &[3, 5]).unwrap(); // stitch k=3, must evict k=2
    assert_eq!(e.region_report(0).stitches, 3);

    e.call("f", &[1, 5]).unwrap(); // still cached: no new stitch
    assert_eq!(
        e.region_report(0).stitches,
        3,
        "k=1 was touched on hit and must not have been evicted"
    );

    e.call("f", &[2, 5]).unwrap(); // evicted: re-stitches
    assert_eq!(e.region_report(0).stitches, 4);
}
