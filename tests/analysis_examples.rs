//! The §3.1 reachability/constants examples, driven from annotated C
//! source through the whole front half of the pipeline (the unit tests in
//! `dyncomp-analysis` build the same CFGs by hand; here the front end
//! builds them).

use dyncomp_analysis::{analyze_region, AnalysisConfig};
use dyncomp_frontend::{compile, LowerOptions};
use dyncomp_ir::{Function, InstKind, RegionId, Terminator};

fn prepare(src: &str) -> Function {
    let mut m = compile(src, &LowerOptions::default())
        .expect("compiles")
        .module;
    let fid = m.funcs.ids().next().unwrap();
    let f = &mut m.funcs[fid];
    dyncomp_ir::ssa::construct_ssa(f);
    dyncomp_opt::optimize(
        f,
        &dyncomp_opt::OptOptions {
            cfg_simplify: true,
            hole_scope: None,
        },
    );
    dyncomp_ir::cfg::split_critical_edges(f);
    f.canonicalize_region_roots();
    m.funcs[fid].clone()
}

/// The paper's unstructured example with both `a` and `b` constant: the
/// value merged through the switch fall-through/goto web is a constant.
#[test]
fn unstructured_merges_constant_when_a_and_b_constant() {
    let src = r#"
        int f(int a, int b, int x) {
            dynamicRegion (a, b) {
                int r = 0;
                if (a) { r = 10; }
                else {
                    switch (b) {
                        case 1: r = 20;      /* fall through */
                        case 2: r = r + 1; break;
                        case 3: r = 30; goto L;
                    }
                    r = r + 2;
                }
                r = r + 100;
                L: return r + x;
            }
        }
    "#;
    let f = prepare(src);
    let a = analyze_region(&f, RegionId(0), &AnalysisConfig::default());
    // The return value is r + x where x is dynamic; its r operand must be
    // constant: find the final add feeding the return.
    let mut found_const_r = false;
    for (b, blk) in f.iter_blocks() {
        if !f.regions[RegionId(0)].blocks.contains(b) {
            continue;
        }
        if let Terminator::Return(Some(v)) = blk.term {
            if let InstKind::Bin(_, lhs, rhs) = f.kind(v) {
                // one side dynamic (x), the other the merged r
                let r_side = if a.is_const(*lhs) { *lhs } else { *rhs };
                if a.is_const(r_side) {
                    found_const_r = true;
                }
            }
        }
    }
    assert!(found_const_r, "the merged r is a run-time constant");
    assert!(
        a.const_branches.len() >= 2,
        "if (a) and switch (b) are constant branches"
    );
}

/// Same shape with only `a` constant: the switch merges go dynamic, so r
/// is not constant at the label.
#[test]
fn unstructured_merges_dynamic_when_only_a_constant() {
    let src = r#"
        int f(int a, int b, int x) {
            dynamicRegion (a) {
                int r = 0;
                if (a) { r = 10; }
                else {
                    switch (b) {
                        case 1: r = 20;
                        case 2: r = r + 1; break;
                        case 3: r = 30; goto L;
                    }
                    r = r + 2;
                }
                r = r + 100;
                L: return r + x;
            }
        }
    "#;
    let f = prepare(src);
    let a = analyze_region(&f, RegionId(0), &AnalysisConfig::default());
    for (b, blk) in f.iter_blocks() {
        if !f.regions[RegionId(0)].blocks.contains(b) {
            continue;
        }
        if let Terminator::Return(Some(v)) = blk.term {
            if let InstKind::Bin(_, lhs, rhs) = f.kind(v) {
                assert!(
                    !a.is_const(*lhs) && !a.is_const(*rhs),
                    "with b dynamic, the merged r is not constant"
                );
            }
        }
    }
}

/// The ablation from the paper's argument: without reachability
/// conditions, even the all-constant version finds no constant merges.
#[test]
fn ablation_loses_unstructured_constants() {
    let src = r#"
        int f(int a, int x) {
            dynamicRegion (a) {
                int r = 0;
                if (a > 3) { r = 10; } else { r = 20; }
                return r + x;
            }
        }
    "#;
    let f = prepare(src);
    let with = analyze_region(
        &f,
        RegionId(0),
        &AnalysisConfig {
            use_reachability: true,
        },
    );
    let without = analyze_region(
        &f,
        RegionId(0),
        &AnalysisConfig {
            use_reachability: false,
        },
    );
    assert!(
        with.const_values.len() > without.const_values.len(),
        "reachability finds more constants ({} vs {})",
        with.const_values.len(),
        without.const_values.len()
    );
    assert!(!with.const_merges.is_empty());
}

/// The pointer-chase loop of §3.1, from source: the induction pointer and
/// the values loaded through it are constants.
#[test]
fn pointer_chase_constants_from_source() {
    let src = r#"
        struct Node { int v; struct Node *next; };
        int sum(struct Node *lst, int x) {
            dynamicRegion (lst) {
                int acc = 0;
                struct Node *p;
                unrolled for (p = lst; p != 0; p = p->next) {
                    acc = acc + p->v * x;
                }
                return acc;
            }
        }
    "#;
    let f = prepare(src);
    let a = analyze_region(&f, RegionId(0), &AnalysisConfig::default());
    // The loop-governing branch (p != 0) must be constant, and the region
    // must contain constant loads (p->v, p->next).
    assert!(
        !a.const_branches.is_empty(),
        "p != NULL is a constant branch"
    );
    let const_loads = f
        .iter_blocks()
        .filter(|(b, _)| f.regions[RegionId(0)].blocks.contains(*b))
        .flat_map(|(_, blk)| blk.insts.iter())
        .filter(|&&i| matches!(f.kind(i), InstKind::Load { .. }) && a.is_const(i))
        .count();
    assert!(
        const_loads >= 2,
        "p->v and p->next are constant loads, got {const_loads}"
    );
}
