//! Golden test for the paper's running example (§2–§4): `cacheLookup`.
//!
//! Checks the artifacts the paper shows in Figure 1 and §4:
//!
//! * the derived run-time constants (blockSize, numLines, their product,
//!   the lines array, assoc, the unrolled induction variable);
//! * the set-up/template split with per-iteration record chains;
//! * the Table 1 directives (HOLE, CONST_BRANCH with a per-iteration
//!   slot, ENTER_LOOP/RESTART_LOOP);
//! * the §4 final stitched code: for a 512-line, 32-byte-block, 4-way
//!   cache, the divisions and modulus become shifts and masks, the loop
//!   unrolls into 4 compare sequences, and the lookup behaves like a real
//!   cache.

use dyncomp::{Compiler, Engine};
use dyncomp_machine::template::{HoleField, LoopMarker, TmplExit};

const SRC: &str = r#"
    struct setStructure { unsigned tag; };
    struct cacheLine { struct setStructure **sets; };
    struct Cache {
        unsigned blockSize;
        unsigned numLines;
        struct cacheLine **lines;
        int associativity;
    };
    int cacheLookup(unsigned addr, struct Cache *cache) {
        dynamicRegion (cache) {
            unsigned blockSize = cache->blockSize;
            unsigned numLines = cache->numLines;
            unsigned tag = addr / (blockSize * numLines);
            unsigned line = (addr / blockSize) % numLines;
            struct setStructure **setArray = cache->lines[line]->sets;
            int assoc = cache->associativity;
            int set;
            unrolled for (set = 0; set < assoc; set++) {
                if (setArray[set] dynamic-> tag == tag)
                    return 1;
            }
            return 0;
        }
    }
"#;

struct CacheImage {
    cache: u64,
    sets: Vec<Vec<u64>>, // [line][way] -> setStructure address
    block_size: u64,
    num_lines: u64,
}

fn build_cache(e: &mut Engine, block_size: u64, num_lines: u64, assoc: u64) -> CacheImage {
    let mut h = e.heap();
    let mut line_recs = Vec::new();
    let mut sets = Vec::new();
    for _ in 0..num_lines {
        let mut ways = Vec::new();
        for _ in 0..assoc {
            ways.push(h.record(&[u64::MAX]).unwrap());
        }
        let arr = h.array_u64(&ways).unwrap();
        line_recs.push(h.record(&[arr]).unwrap());
        sets.push(ways);
    }
    let lines = h.array_u64(&line_recs).unwrap();
    let cache = h.record(&[block_size, num_lines, lines, assoc]).unwrap();
    CacheImage {
        cache,
        sets,
        block_size,
        num_lines,
    }
}

#[test]
fn figure1_template_structure() {
    let p = Compiler::new().compile(SRC).unwrap();
    assert_eq!(p.region_count(), 1);
    let rc = &p.compiled.regions[0];
    let t = &rc.template;

    // Loop markers: exactly one ENTER_LOOP and one RESTART_LOOP (the
    // paper's L5/L10 directives).
    let enters = t
        .blocks
        .iter()
        .filter(|b| matches!(b.marker, Some(LoopMarker::Enter { .. })))
        .count();
    let restarts = t
        .blocks
        .iter()
        .filter(|b| matches!(b.marker, Some(LoopMarker::Restart { .. })))
        .count();
    assert_eq!(enters, 1);
    assert_eq!(restarts, 1);

    // The loop-governing branch is a CONST_BRANCH on a per-iteration slot
    // (the paper's `CONST_BRANCH(L6, 4:0)`).
    let per_iter_branch = t
        .blocks
        .iter()
        .any(|b| matches!(&b.exit, TmplExit::ConstBranch { slot, .. } if !slot.is_static()));
    assert!(
        per_iter_branch,
        "loop branch reads a per-iteration predicate"
    );

    // Holes exist, and at least one reads a per-iteration slot (the
    // paper's `HOLE(L7, 2, 4:1)` for setArray[set]).
    let holes: Vec<_> = t.blocks.iter().flat_map(|b| b.holes.iter()).collect();
    assert!(!holes.is_empty());
    assert!(
        holes.iter().any(|h| !h.slot.is_static()),
        "per-iteration hole"
    );
    assert!(
        holes.iter().any(|h| h.slot.is_static()),
        "static holes (tag divisor, …)"
    );
    // The paper's integer holes become operate literals; address-sized
    // constants (setArray) use the statically inserted table load.
    assert!(holes.iter().any(|h| matches!(h.field, HoleField::Lit)));
    assert!(holes
        .iter()
        .any(|h| matches!(h.field, HoleField::MemDisp { .. })));

    // The planned optimizations include the ones §3.1 underlines.
    let (_, stats) = p.spec_stats[0];
    assert!(
        stats.loads_eliminated >= 4,
        "blockSize/numLines/lines/assoc: {stats:?}"
    );
    assert!(stats.const_insts_eliminated >= 6, "{stats:?}");
    assert_eq!(stats.unrolled_loops, 1);
    assert!(stats.const_branches >= 1);
}

#[test]
fn section4_final_code_for_512_line_cache() {
    // "512 lines, 32-byte blocks, and 4-way set associativity": the §4
    // stitched code uses >> 14, >> 5, & 511, and four unrolled compares.
    let p = Compiler::new().compile(SRC).unwrap();
    let mut e = Engine::new(&p);
    let img = build_cache(&mut e, 32, 512, 4);

    let addr = 0x123456u64;
    assert_eq!(
        e.call("cacheLookup", &[addr, img.cache]).unwrap(),
        0,
        "cold miss"
    );

    let report = e.region_report(0);
    // Divisions/modulus by powers of two became shifts/masks.
    assert!(
        report.stitch_stats.strength_reductions >= 2,
        "addr/32, addr/(32*512), %512 reduced: {:?}",
        report.stitch_stats
    );
    // The loop unrolled into 4 copies.
    assert_eq!(report.stitch_stats.loop_iterations, 4);
    // Dead-code elimination happened at every constant branch.
    assert!(
        report.stitch_stats.const_branches_resolved >= 5,
        "4 continues + final exit"
    );

    // Behaves like a cache: install the tag in the right line, any way.
    let tag = addr / (img.block_size * img.num_lines);
    let line = (addr / img.block_size) % img.num_lines;
    for way in 0..4 {
        // Reset all ways, set only `way`.
        for w in 0..4 {
            e.heap()
                .put_u64(img.sets[line as usize][w], u64::MAX)
                .unwrap();
        }
        e.heap().put_u64(img.sets[line as usize][way], tag).unwrap();
        assert_eq!(
            e.call("cacheLookup", &[addr, img.cache]).unwrap(),
            1,
            "hit way {way}"
        );
    }
    // Same line, different tag: miss. Different line: miss.
    assert_eq!(
        e.call("cacheLookup", &[addr + 0x100000, img.cache])
            .unwrap(),
        0
    );
    assert_eq!(e.call("cacheLookup", &[addr + 32, img.cache]).unwrap(), 0);
}

#[test]
fn lookup_agrees_with_reference_model_across_configs() {
    // Sweep cache geometries; compare against a host-side model.
    for (bs, nl, assoc) in [(16u64, 8u64, 1u64), (32, 16, 2), (64, 4, 4), (8, 32, 3)] {
        let p = Compiler::new().compile(SRC).unwrap();
        let mut e = Engine::new(&p);
        let img = build_cache(&mut e, bs, nl, assoc);
        // Install some tags.
        let mut model: Vec<Vec<u64>> = vec![vec![u64::MAX; assoc as usize]; nl as usize];
        let mut lcg = 12345u64;
        for _ in 0..(nl * assoc / 2).max(1) {
            lcg = lcg.wrapping_mul(6364136223846793005).wrapping_add(1);
            let line = (lcg >> 8) % nl;
            let way = (lcg >> 24) % assoc;
            let tag = (lcg >> 32) % 64;
            model[line as usize][way as usize] = tag;
            e.heap()
                .put_u64(img.sets[line as usize][way as usize], tag)
                .unwrap();
        }
        for probe in 0..200u64 {
            let addr = probe * 13 % (bs * nl * 64);
            let tag = addr / (bs * nl);
            let line = (addr / bs) % nl;
            let want = u64::from(model[line as usize].contains(&tag));
            let got = e.call("cacheLookup", &[addr, img.cache]).unwrap();
            assert_eq!(got, want, "bs={bs} nl={nl} assoc={assoc} addr={addr}");
        }
    }
}

#[test]
fn static_and_dynamic_agree_and_dynamic_wins() {
    let ps = Compiler::static_baseline().compile(SRC).unwrap();
    let pd = Compiler::new().compile(SRC).unwrap();
    let mut es = Engine::new(&ps);
    let mut ed = Engine::new(&pd);
    let is_ = build_cache(&mut es, 32, 64, 2);
    let id = build_cache(&mut ed, 32, 64, 2);
    let tag = 7u64;
    es.heap().put_u64(is_.sets[3][1], tag).unwrap();
    ed.heap().put_u64(id.sets[3][1], tag).unwrap();
    for addr in (0..4096u64).step_by(37) {
        let a = es.call("cacheLookup", &[addr, is_.cache]).unwrap();
        let b = ed.call("cacheLookup", &[addr, id.cache]).unwrap();
        assert_eq!(a, b, "addr={addr}");
    }
    // And the dynamic version is faster per call once stitched.
    let t0 = ed.cycles();
    ed.call("cacheLookup", &[64, id.cache]).unwrap();
    let dyn_cost = ed.cycles() - t0;
    let t1 = es.cycles();
    es.call("cacheLookup", &[64, is_.cache]).unwrap();
    let static_cost = es.cycles() - t1;
    assert!(
        dyn_cost < static_cost,
        "specialized lookup ({dyn_cost}) beats static ({static_cost})"
    );
}
